#include "exec/ps_backend.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "exec/transport.h"
#include "exec/validate.h"
#include "learn/data.h"
#include "learn/ps_trainer.h"
#include "models/builder.h"
#include "models/zoo.h"
#include "runtime/lowering.h"
#include "runtime/runner.h"

namespace tictac::exec {
namespace {

// Shared setup: a real zoo model lowered for the backend under a named
// policy. AlexNet v2 is the smallest zoo model (16 params), so these
// genuinely-multithreaded tests stay fast.
struct Fixture {
  Fixture(const char* model_name, const char* policy, int workers, int ps)
      : info(models::FindModel(model_name)) {
    config.num_workers = workers;
    config.num_ps = ps;
    config.training = true;
    runner = std::make_unique<runtime::Runner>(info, config);
    schedule = runner->MakeSchedule(policy);
    lowering = runtime::LowerCluster(runner->worker_graph(), schedule,
                                     runner->ps_of_param(), config);
  }

  BackendOptions Options(std::uint64_t seed) const {
    BackendOptions options;
    options.iterations = 3;
    options.seed = seed;
    options.deterministic_clock = true;
    options.assumed = config.platform;
    return options;
  }

  const models::ModelInfo& info;
  runtime::ClusterConfig config;
  std::unique_ptr<runtime::Runner> runner;
  core::Schedule schedule;
  runtime::Lowering lowering;
};

TEST(Transport, BackpressureBlocksProducerAndTerminatesCleanly) {
  InProcTransport transport(/*num_channels=*/1, /*capacity=*/2);
  constexpr int kMessages = 10;
  std::thread producer([&] {
    for (int i = 0; i < kMessages; ++i) {
      Message m;
      m.tag = i;
      m.tensor.assign(8, static_cast<double>(i));
      transport.Send(0, std::move(m));
    }
  });
  // Let the producer run into the full queue before draining.
  while (transport.messages_sent() < 2) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  for (int i = 0; i < kMessages; ++i) {
    const Message m = transport.Recv(0, i);
    ASSERT_EQ(m.tag, i);
    ASSERT_EQ(m.tensor.size(), 8u);
    EXPECT_EQ(m.tensor.front(), static_cast<double>(i));
  }
  producer.join();
  EXPECT_EQ(transport.messages_sent(), static_cast<std::uint64_t>(kMessages));
  // capacity 2 < 10 messages: the producer must have blocked at least once.
  EXPECT_GT(transport.blocked_sends(), 0u);
}

TEST(Transport, TaggedRecvSkipsOtherTags) {
  InProcTransport transport(1, 4);
  for (int tag : {3, 1, 2}) {
    Message m;
    m.tag = tag;
    transport.Send(0, std::move(m));
  }
  EXPECT_EQ(transport.Recv(0, 2).tag, 2);
  EXPECT_EQ(transport.Recv(0, 3).tag, 3);
  EXPECT_EQ(transport.Recv(0, 1).tag, 1);
}

TEST(Transport, RejectsBadArguments) {
  EXPECT_THROW(InProcTransport(0, 1), std::invalid_argument);
  EXPECT_THROW(InProcTransport(1, 0), std::invalid_argument);
}

TEST(PsBackend, RejectsBadOptions) {
  Fixture f("AlexNet v2", "tic", 2, 2);
  BackendOptions bad = f.Options(1);
  bad.iterations = 0;
  EXPECT_THROW(PsBackend(f.lowering, f.runner->worker_graph(), bad),
               std::invalid_argument);
  bad = f.Options(1);
  bad.straggler_factors = {0.5};
  EXPECT_THROW(PsBackend(f.lowering, f.runner->worker_graph(), bad),
               std::invalid_argument);
  bad = f.Options(1);
  bad.straggler_factors = {1.0, 1.0, 1.0};  // three factors, two workers
  EXPECT_THROW(PsBackend(f.lowering, f.runner->worker_graph(), bad),
               std::invalid_argument);
}

TEST(PsBackend, SingleWorkerRunIsBitRepeatableUnderFixedSeed) {
  Fixture f("AlexNet v2", "tic", /*workers=*/1, /*ps=*/1);
  PsBackend a(f.lowering, f.runner->worker_graph(), f.Options(42));
  PsBackend b(f.lowering, f.runner->worker_graph(), f.Options(42));
  const ExecutionTrace ta = a.Run();
  const ExecutionTrace tb = b.Run();

  ASSERT_EQ(ta.iterations.size(), tb.iterations.size());
  for (std::size_t i = 0; i < ta.iterations.size(); ++i) {
    EXPECT_EQ(ta.iterations[i].start, tb.iterations[i].start) << "iter " << i;
    EXPECT_EQ(ta.iterations[i].end, tb.iterations[i].end) << "iter " << i;
    EXPECT_EQ(ta.iterations[i].start_order, tb.iterations[i].start_order);
  }
  EXPECT_EQ(ta.iteration_time_s, tb.iteration_time_s);
  EXPECT_EQ(ta.loss, tb.loss);
  EXPECT_EQ(ta.final_accuracy, tb.final_accuracy);
  EXPECT_EQ(ta.final_weight_checksums, tb.final_weight_checksums);
  EXPECT_EQ(ta.handoff_order, tb.handoff_order);
  EXPECT_EQ(ta.messages, tb.messages);

  // A different seed perturbs the cargo (weights, minibatch order).
  PsBackend c(f.lowering, f.runner->worker_graph(), f.Options(43));
  EXPECT_NE(c.Run().loss, ta.loss);
}

TEST(PsBackend, EnforcedHandoffOrderMatchesScheduleOrder) {
  Fixture f("AlexNet v2", "tic", /*workers=*/2, /*ps=*/2);
  PsBackend backend(f.lowering, f.runner->worker_graph(), f.Options(7));
  const ExecutionTrace trace = backend.Run();

  for (int w = 0; w < f.config.num_workers; ++w) {
    // Expected order per worker: its gated recv params by gate rank.
    std::vector<std::pair<int, int>> by_rank;
    const auto& recvs = f.lowering.worker_recv_tasks[static_cast<std::size_t>(w)];
    const auto& params = f.lowering.transfer_param[static_cast<std::size_t>(w)];
    for (std::size_t i = 0; i < recvs.size(); ++i) {
      const sim::Task& task =
          f.lowering.tasks[static_cast<std::size_t>(recvs[i])];
      ASSERT_GE(task.gate_group, 0) << "tic schedule must gate every recv";
      by_rank.emplace_back(task.gate_rank, params[i]);
    }
    std::sort(by_rank.begin(), by_rank.end());
    std::vector<int> expected;
    for (const auto& [rank, param] : by_rank) expected.push_back(param);
    EXPECT_EQ(trace.handoff_order[static_cast<std::size_t>(w)], expected)
        << "worker " << w;
  }
}

TEST(PsBackend, BaselineHasNoGatesAndNoHandoffLog) {
  Fixture f("AlexNet v2", "baseline", 2, 2);
  PsBackend backend(f.lowering, f.runner->worker_graph(), f.Options(7));
  const ExecutionTrace trace = backend.Run();
  for (const auto& order : trace.handoff_order) EXPECT_TRUE(order.empty());
  EXPECT_GT(trace.MeanIterationTime(), 0.0);
}

TEST(PsBackend, StragglerKnobMonotonicallyIncreasesIterationTime) {
  Fixture f("AlexNet v2", "tic", 2, 2);
  double previous = 0.0;
  for (const double factor : {1.0, 2.0, 4.0}) {
    BackendOptions options = f.Options(7);
    options.straggler_factors = {1.0, factor};
    PsBackend backend(f.lowering, f.runner->worker_graph(), options);
    const double measured = backend.Run().MeanIterationTime();
    EXPECT_GT(measured, previous) << "straggler factor " << factor;
    previous = measured;
  }
}

TEST(PsBackend, ThreadedExecutionMatchesSerialPsTrainerBitForBit) {
  // The differential pin: the backend's threaded parameter-server loop
  // must reproduce the serial learn::PsTrainer numerics exactly —
  // per-iteration losses, final accuracy, and final weights.
  constexpr std::uint64_t kSeed = 11;
  constexpr int kIterations = 4;
  Fixture f("AlexNet v2", "tac", /*workers=*/2, /*ps=*/2);
  BackendOptions options = f.Options(kSeed);
  options.iterations = kIterations;
  PsBackend backend(f.lowering, f.runner->worker_graph(), options);
  const ExecutionTrace trace = backend.Run();

  learn::TrainConfig train;
  train.num_workers = f.config.num_workers;
  train.batch_per_worker = options.workload.batch_per_worker;
  train.learning_rate = options.workload.learning_rate;
  train.model_seed = kSeed;
  train.data_seed = kSeed;
  const learn::Dataset dataset = learn::MakeGaussianMixture(
      options.workload.dataset_examples, options.workload.shape.inputs,
      static_cast<int>(options.workload.shape.classes),
      options.workload.dataset_seed);
  learn::PsTrainer trainer(train, dataset);
  const learn::TrainLog log = trainer.Train(kIterations, {});

  ASSERT_EQ(trace.loss.size(), log.loss.size());
  for (std::size_t i = 0; i < log.loss.size(); ++i) {
    EXPECT_EQ(trace.loss[i], log.loss[i]) << "iteration " << i;
  }
  EXPECT_EQ(trace.final_accuracy, log.final_accuracy);
  ASSERT_EQ(trace.final_weight_checksums.size(), trainer.model().num_params());
  for (std::size_t p = 0; p < trainer.model().num_params(); ++p) {
    const auto& data = trainer.model().param(p).data();
    double checksum = 0.0;
    for (double v : data) checksum += v;
    EXPECT_EQ(trace.final_weight_checksums[p], checksum) << "param " << p;
  }
}

TEST(PsBackend, RealClockSmoke) {
  // Wall-clock mode: honest (machine-dependent) measurement. Just pin
  // that the threaded run completes and produces ordered timestamps.
  Fixture f("AlexNet v2", "tic", 2, 1);
  BackendOptions options = f.Options(3);
  options.deterministic_clock = false;
  options.iterations = 2;
  options.work_scale = 1e-6;
  options.wire_scale = 1e-4;
  PsBackend backend(f.lowering, f.runner->worker_graph(), options);
  const ExecutionTrace trace = backend.Run();
  EXPECT_GT(trace.MeanIterationTime(), 0.0);
  for (const sim::SimResult& it : trace.iterations) {
    for (std::size_t t = 0; t < it.start.size(); ++t) {
      EXPECT_LE(it.start[t], it.end[t]);
    }
  }
  EXPECT_GT(trace.messages, 0u);
  EXPECT_FALSE(trace.loss.empty());
}

TEST(ValidateAgainstSim, SelfCalibrationKeepsPredictionErrorSmall) {
  ExecSpec spec;
  spec.model = "AlexNet v2";
  spec.policies = {"baseline", "tic", "tac"};
  spec.num_workers = 2;
  spec.num_ps = 2;
  spec.iterations = 3;
  spec.seed = 1;
  spec.deterministic = true;
  const ExecReport report = ValidateAgainstSim(spec);

  ASSERT_EQ(report.policies.size(), 3u);
  for (const PolicyValidation& row : report.policies) {
    EXPECT_GT(row.measured_s, 0.0) << row.policy;
    EXPECT_TRUE(row.calibration_ok) << row.policy;
    EXPECT_TRUE(row.order_matches_schedule) << row.policy;
    EXPECT_LE(row.error_pct, 15.0) << row.policy;
    // The hidden platform is skewed from the assumed one, so the
    // uncalibrated prediction must be visibly worse than the
    // calibrated one — otherwise the round-trip proves nothing.
    EXPECT_GT(row.uncalibrated_error_pct, row.error_pct) << row.policy;
  }
  EXPECT_LE(report.MeanAbsErrorPct(), 15.0);
}

TEST(ValidateAgainstSim, DeterministicReportIsByteIdentical) {
  ExecSpec spec;
  spec.model = "AlexNet v2";
  spec.policies = {"tic"};
  spec.num_workers = 2;
  spec.num_ps = 1;
  spec.iterations = 2;
  spec.seed = 5;
  spec.deterministic = true;
  const std::string a = ValidateAgainstSim(spec).ToJson();
  const std::string b = ValidateAgainstSim(spec).ToJson();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"prediction_error_pct\""), std::string::npos);
}

TEST(ValidateAgainstSim, TracksStragglerPerturbation) {
  // Simulator validation under perturbation: with the knob mirrored into
  // worker speed factors, the calibrated prediction must stay close even
  // when worker 1 runs 3x slow.
  ExecSpec spec;
  spec.model = "AlexNet v2";
  spec.policies = {"tic"};
  spec.num_workers = 2;
  spec.num_ps = 2;
  spec.iterations = 3;
  spec.seed = 2;
  spec.deterministic = true;
  spec.straggler_factors = {1.0, 3.0};
  const ExecReport report = ValidateAgainstSim(spec);
  ASSERT_EQ(report.policies.size(), 1u);
  EXPECT_LE(report.policies.front().error_pct, 15.0);
}

}  // namespace
}  // namespace tictac::exec
