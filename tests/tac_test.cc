#include "core/tac.h"

#include <gtest/gtest.h>

#include <numeric>

#include "models/builder.h"
#include "models/zoo.h"

namespace tictac::core {
namespace {

RecvProperties Props(OpId op, double M, double P, double Mplus) {
  RecvProperties p;
  p.op = op;
  p.M = M;
  p.P = P;
  p.Mplus = Mplus;
  return p;
}

TEST(TacComparator, LimitingCaseLargeComputeLoadGoesFirst) {
  // P_A huge, P_B = 0: completing A unblocks a large compute load while B
  // unblocks nothing, so A must precede B (the Eq. 6 sanity check that
  // exposes the sign typo in the printed Algorithm 3).
  const auto a = Props(0, /*M=*/1.0, /*P=*/1000.0, /*Mplus=*/5.0);
  const auto b = Props(1, /*M=*/1.0, /*P=*/0.0, /*Mplus=*/5.0);
  EXPECT_TRUE(TacBefore(a, b));
  EXPECT_FALSE(TacBefore(b, a));
}

TEST(TacComparator, Fig4aWorkedExample) {
  // Times: recvA=2, recvB=1, op1=3, op3=1 (P_A=4), op2=2 (P_B=2).
  // Makespan(A->B) = M_A + max{P_A, M_B} + P_B = 2 + 4 + 2 = 8.
  // Makespan(B->A) = M_B + max{P_B, M_A} + P_A = 1 + 2 + 4 = 7.
  // B first is better, and Eq. 6 agrees: min{P_B, M_A} = 2,
  // min{P_A, M_B} = 1, so NOT (A before B).
  const auto a = Props(0, 2.0, 4.0, kInfinity);
  const auto b = Props(1, 1.0, 2.0, kInfinity);
  EXPECT_FALSE(TacBefore(a, b));
  EXPECT_TRUE(TacBefore(b, a));
}

TEST(TacComparator, TieBreaksOnMplus) {
  // Case 2: all P = 0 makes Eq. 6 tie; smaller M+ goes first.
  const auto a = Props(0, 1.0, 0.0, 2.0);
  const auto c = Props(1, 3.0, 0.0, 4.0);
  EXPECT_TRUE(TacBefore(a, c));
  EXPECT_FALSE(TacBefore(c, a));
}

TEST(TacComparator, FinalTieBreaksOnOpId) {
  const auto a = Props(3, 1.0, 0.0, 2.0);
  const auto b = Props(5, 1.0, 0.0, 2.0);
  EXPECT_TRUE(TacBefore(a, b));
  EXPECT_FALSE(TacBefore(b, a));
}

TEST(TacComparator, Antisymmetric) {
  const auto a = Props(0, 2.0, 3.0, 4.0);
  const auto b = Props(1, 1.0, 5.0, 6.0);
  EXPECT_NE(TacBefore(a, b), TacBefore(b, a));
}

TEST(Tac, Fig1aPrefersComputeUnblockingRecv) {
  // recv1 unblocks op1 (10 time units); recv2 unblocks nothing by itself.
  Graph g;
  const OpId r1 = g.AddRecv("recv1", 0);
  const OpId r2 = g.AddRecv("recv2", 0);
  const OpId o1 = g.AddCompute("op1", 10.0);
  const OpId o2 = g.AddCompute("op2", 1.0);
  g.AddEdge(r1, o1);
  g.AddEdge(o1, o2);
  g.AddEdge(r2, o2);
  MapTimeOracle oracle({{r1, 1.0}, {r2, 1.0}, {o1, 10.0}, {o2, 1.0}});
  const Schedule s = Tac(g, oracle);
  EXPECT_EQ(s.priority(r1), 0);
  EXPECT_EQ(s.priority(r2), 1);
}

TEST(Tac, PrioritiesAreAPermutation) {
  const auto& info = models::FindModel("ResNet-50 v1");
  const Graph g = models::BuildWorkerGraph(info, {.training = true});
  PlatformModel hw;
  AnalyticalTimeOracle oracle(hw);
  const Schedule s = Tac(g, oracle);
  const auto recvs = g.RecvOps();
  std::vector<int> priorities;
  priorities.reserve(recvs.size());
  for (OpId r : recvs) priorities.push_back(s.priority(r));
  std::sort(priorities.begin(), priorities.end());
  std::vector<int> expected(recvs.size());
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(priorities, expected);
}

TEST(Tac, ChainModelFollowsLayerOrder) {
  Graph g;
  std::vector<OpId> recvs;
  MapTimeOracle oracle({});
  OpId prev = kInvalidOp;
  for (int k = 0; k < 5; ++k) {
    const OpId r = g.AddRecv("r" + std::to_string(k), 0);
    const OpId c = g.AddCompute("c" + std::to_string(k), 1);
    g.AddEdge(r, c);
    if (prev != kInvalidOp) g.AddEdge(prev, c);
    prev = c;
    recvs.push_back(r);
    oracle.Set(r, 2.0);
    oracle.Set(c, 1.0);
  }
  const Schedule s = Tac(g, oracle);
  for (std::size_t k = 1; k < recvs.size(); ++k) {
    EXPECT_LT(s.priority(recvs[k - 1]), s.priority(recvs[k]));
  }
}

TEST(Tac, DeterministicAcrossCalls) {
  const auto& info = models::FindModel("Inception v2");
  const Graph g = models::BuildWorkerGraph(info, {});
  PlatformModel hw;
  AnalyticalTimeOracle oracle(hw);
  const Schedule a = Tac(g, oracle);
  const Schedule b = Tac(g, oracle);
  for (OpId r : g.RecvOps()) EXPECT_EQ(a.priority(r), b.priority(r));
}

TEST(Tac, WorksWithGeneralOracle) {
  // TAC degenerates gracefully when fed the structural oracle.
  const auto& info = models::FindModel("AlexNet v2");
  const Graph g = models::BuildWorkerGraph(info, {});
  GeneralTimeOracle oracle;
  const Schedule s = Tac(g, oracle);
  EXPECT_TRUE(s.CoversAllRecvs(g));
}

}  // namespace
}  // namespace tictac::core
