#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/csv.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace tictac::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1 << 20) != b.UniformInt(0, 1 << 20)) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.UniformInt(-3, 5);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 5);
  }
}

TEST(Rng, IndexCoversAllBuckets) {
  Rng rng(11);
  std::vector<int> hits(5, 0);
  for (int i = 0; i < 5000; ++i) hits[rng.Index(5)]++;
  for (int h : hits) EXPECT_GT(h, 800);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(Rng, LognormalMedianApprox) {
  Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.Lognormal(2.0, 0.25));
  EXPECT_NEAR(Percentile(xs, 0.5), 2.0, 0.05);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.Fork();
  EXPECT_NE(a.UniformInt(0, 1 << 30), child.UniformInt(0, 1 << 30));
}

TEST(RunningStat, MeanAndVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, SingleSampleHasZeroVariance) {
  RunningStat s;
  s.Add(3.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Percentile, KnownQuantiles) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.25), 2.0);
}

TEST(Percentile, EmptySampleReturnsZero) {
  EXPECT_EQ(Percentile({}, 0.5), 0.0);
}

TEST(Percentile, InterpolatesBetweenValues) {
  EXPECT_DOUBLE_EQ(Percentile({0.0, 10.0}, 0.5), 5.0);
}

TEST(Stats, MeanStddevMinMax) {
  std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
  EXPECT_NEAR(Stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(Min(xs), 1.0);
  EXPECT_DOUBLE_EQ(Max(xs), 4.0);
  EXPECT_EQ(Mean({}), 0.0);
}

TEST(EmpiricalCdf, MonotoneAndBounded) {
  std::vector<double> xs;
  Rng rng(1);
  for (int i = 0; i < 500; ++i) xs.push_back(rng.Uniform(0, 1));
  const auto cdf = EmpiricalCdf(xs, 20);
  ASSERT_EQ(cdf.size(), 20u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GE(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(FitLine, ExactLineHasR2One) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{3, 5, 7, 9, 11};  // y = 1 + 2x
  const LinearFit fit = FitLine(x, y);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(FitLine, NoisyLineHasHighR2) {
  std::vector<double> x;
  std::vector<double> y;
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const double xi = rng.Uniform(0, 10);
    x.push_back(xi);
    y.push_back(2.0 * xi + rng.Normal(0.0, 0.1));
  }
  const LinearFit fit = FitLine(x, y);
  EXPECT_GT(fit.r2, 0.99);
  EXPECT_NEAR(fit.slope, 2.0, 0.05);
}

TEST(FitLine, DegenerateInputs) {
  EXPECT_EQ(FitLine({1.0}, {2.0}).r2, 0.0);
  EXPECT_EQ(FitLine({2.0, 2.0}, {1.0, 3.0}).slope, 0.0);  // vertical data
}

TEST(Table, FormatsAlignedColumns) {
  Table t({"model", "speedup"});
  t.AddRow({"VGG-16", "+12.3%"});
  t.AddRow({"AlexNet v2", "+4.0%"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| model"), std::string::npos);
  EXPECT_NE(s.find("VGG-16"), std::string::npos);
  EXPECT_NE(s.find("|---"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.AddRow({"only"});
  EXPECT_NE(t.ToString().find("only"), std::string::npos);
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(2.0, 0), "2");
  EXPECT_EQ(FmtPct(0.123, 1), "+12.3%");
  EXPECT_EQ(FmtPct(-0.042, 1), "-4.2%");
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Rng, ExponentialMeanMatchesRate) {
  // 20k draws at rate 4: the sample mean of Exp(rate) concentrates
  // around 1/rate (stderr ~ 1/(rate*sqrt(n)) ≈ 0.0018).
  Rng rng(17);
  const double rate = 4.0;
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.Exponential(rate);
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 20000.0, 1.0 / rate, 0.01);
}

TEST(Rng, ExponentialDeterministicForSameSeed) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Exponential(2.5), b.Exponential(2.5));
  }
}

TEST(Rng, PoissonMeanAndVarianceMatch) {
  // Poisson(6): mean == variance == 6. 20k draws pin both to ~1%.
  Rng rng(23);
  const double mean = 6.0;
  std::vector<double> draws;
  draws.reserve(20000);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const auto k = rng.Poisson(mean);
    EXPECT_GE(k, 0);
    draws.push_back(static_cast<double>(k));
    sum += static_cast<double>(k);
  }
  const double sample_mean = sum / 20000.0;
  double var = 0.0;
  for (const double k : draws) {
    var += (k - sample_mean) * (k - sample_mean);
  }
  var /= 20000.0;
  EXPECT_NEAR(sample_mean, mean, 0.1);
  EXPECT_NEAR(var, mean, 0.25);
}

TEST(Rng, PoissonDeterministicForSameSeed) {
  Rng a(5);
  Rng b(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Poisson(3.0), b.Poisson(3.0));
  }
}

TEST(Rng, PoissonSmallMeanIsMostlyZeroOrOne) {
  Rng rng(31);
  int small = 0;
  for (int i = 0; i < 1000; ++i) {
    if (rng.Poisson(0.1) <= 1) ++small;
  }
  // P(X <= 1) for Poisson(0.1) is ~0.995.
  EXPECT_GT(small, 980);
}

TEST(Rng, StreamSplitIsDeterministicAndIndependent) {
  // Same (seed, stream) => the same sequence; sibling streams and the
  // root rng diverge. The split is static, so pulling a fault stream off
  // a seed never consumes state from any other consumer of that seed.
  Rng a = Rng::Stream(42, 1);
  Rng b = Rng::Stream(42, 1);
  Rng sibling = Rng::Stream(42, 2);
  Rng root(42);
  const double first = a.Uniform01();
  EXPECT_EQ(first, b.Uniform01());
  EXPECT_NE(first, sibling.Uniform01());
  EXPECT_NE(first, root.Uniform01());
}

TEST(Rng, Uniform01IsInHalfOpenUnitInterval) {
  Rng rng = Rng::Stream(7, 3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform01();
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(Csv, WritesRowsToFile) {
  const std::string path = ::testing::TempDir() + "/tictac_csv_test.csv";
  {
    CsvWriter w(path, {"x", "y"});
    w.AddRow({"1", "2"});
    EXPECT_THROW(w.AddRow({"only one"}), std::runtime_error);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
}

}  // namespace
}  // namespace tictac::util
