// Black-box CLI smoke tests: bad arguments must exit non-zero with usage
// on stderr, and a chaos-mode serve must replay deterministically. The
// binary path is injected by CMake as TICTAC_CLI_PATH; these tests shell
// out to the real executable, so they cover argv parsing end to end.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#ifndef _WIN32
#include <sys/wait.h>
#endif

namespace {

struct CliResult {
  int exit_code = -1;
  std::string stderr_text;
};

CliResult RunCli(const std::string& args) {
  const std::string err_path = ::testing::TempDir() + "/tictac_cli_err.txt";
  const std::string cmd = std::string(TICTAC_CLI_PATH) + " " + args +
                          " >/dev/null 2>" + err_path;
  CliResult result;
  int status = std::system(cmd.c_str());
#ifndef _WIN32
  if (WIFEXITED(status)) status = WEXITSTATUS(status);
#endif
  result.exit_code = status;
  std::ifstream in(err_path);
  std::ostringstream text;
  text << in.rdbuf();
  result.stderr_text = text.str();
  return result;
}

TEST(CliSmoke, KnownSubcommandSucceeds) {
  const CliResult result = RunCli("models");
  EXPECT_EQ(result.exit_code, 0) << result.stderr_text;
}

TEST(CliSmoke, NoArgumentsPrintsUsageAndFails) {
  const CliResult result = RunCli("");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.stderr_text.find("usage:"), std::string::npos)
      << result.stderr_text;
}

TEST(CliSmoke, UnknownSubcommandPrintsUsageAndFails) {
  const CliResult result = RunCli("frobnicate");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.stderr_text.find("unknown command: frobnicate"),
            std::string::npos)
      << result.stderr_text;
  EXPECT_NE(result.stderr_text.find("usage:"), std::string::npos);
}

TEST(CliSmoke, UnknownFlagPrintsUsageAndFails) {
  const CliResult result = RunCli("run --bogus-flag 3");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.stderr_text.find("unknown flag: --bogus-flag"),
            std::string::npos)
      << result.stderr_text;
  EXPECT_NE(result.stderr_text.find("usage:"), std::string::npos);
}

TEST(CliSmoke, MalformedFaultSpecIsRejected) {
  const CliResult result = RunCli(
      "serve --arrivals poisson:rate=5 --duration 0.1 --faults meteor:at=1");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.stderr_text.find("fault"), std::string::npos)
      << result.stderr_text;
}

TEST(CliSmoke, ChaosServeRuns) {
  const CliResult result = RunCli(
      "serve --arrivals poisson:rate=10 --duration 0.2 --fabrics 2 "
      "--faults crash:fabric=0:at=0.1 --json");
  EXPECT_EQ(result.exit_code, 0) << result.stderr_text;
}

TEST(CliSmoke, ExecRuns) {
  const CliResult result = RunCli(
      "exec --model \"AlexNet v2\" --policy tic --workers 2 --ps 1 "
      "--iters 2 --straggler 1=2 --deterministic");
  EXPECT_EQ(result.exit_code, 0) << result.stderr_text;
}

TEST(CliSmoke, ExecJsonCarriesPredictionError) {
  // Route stdout to the captured file instead of stderr: the JSON body
  // is the contract under test.
  const std::string out_path = ::testing::TempDir() + "/tictac_exec.json";
  const std::string cmd =
      std::string(TICTAC_CLI_PATH) +
      " exec --model \"AlexNet v2\" --workers 2 --ps 2 --iters 2 --seed 5"
      " --deterministic --json >" +
      out_path + " 2>/dev/null";
  int status = std::system(cmd.c_str());
#ifndef _WIN32
  if (WIFEXITED(status)) status = WEXITSTATUS(status);
#endif
  ASSERT_EQ(status, 0);
  std::ifstream in(out_path);
  std::ostringstream text;
  text << in.rdbuf();
  const std::string json = text.str();
  EXPECT_NE(json.find("\"prediction_error_pct\":"), std::string::npos);
  EXPECT_NE(json.find("\"order_matches_schedule\":true"), std::string::npos);
  EXPECT_NE(json.find("\"mean_abs_prediction_error_pct\":"),
            std::string::npos);
}

TEST(CliSmoke, ExecUnknownFlagPrintsUsageAndFails) {
  const CliResult result = RunCli("exec --bogus-flag 3");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.stderr_text.find("unknown flag: --bogus-flag"),
            std::string::npos)
      << result.stderr_text;
  EXPECT_NE(result.stderr_text.find("usage:"), std::string::npos);
}

TEST(CliSmoke, ExecFlagsAreRejectedElsewhere) {
  const CliResult result = RunCli("sweep --sweep x --straggler 1=2");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.stderr_text.find("belong to exec"), std::string::npos)
      << result.stderr_text;
}

TEST(CliSmoke, LowerRunsComposedScenarioThroughOnePipeline) {
  // The DESIGN.md §10 quickstart: chunked + sharded + multi-job, one
  // ir::PassPipeline invocation. stdout carries the pass list and the
  // combined result; --dump adds per-pass module summaries on stderr.
  const std::string out_path = ::testing::TempDir() + "/tictac_lower.json";
  const std::string cmd =
      std::string(TICTAC_CLI_PATH) +
      " lower --jobs \"2x{envG:workers=2:ps=2:training:chunk=4194304"
      ":shard=even model=Inception v1 policy=tic iterations=2}"
      " {envG:workers=2:ps=2:training model=AlexNet v2 policy=baseline"
      " iterations=2}@0.05\" --dump --json >" +
      out_path + " 2>/dev/null";
  int status = std::system(cmd.c_str());
#ifndef _WIN32
  if (WIFEXITED(status)) status = WEXITSTATUS(status);
#endif
  ASSERT_EQ(status, 0);
  std::ifstream in(out_path);
  std::ostringstream text;
  text << in.rdbuf();
  const std::string json = text.str();
  EXPECT_NE(json.find("\"passes\":"), std::string::npos) << json;
  EXPECT_NE(json.find("chunk_transfers"), std::string::npos) << json;
  EXPECT_NE(json.find("merge_jobs"), std::string::npos) << json;
  EXPECT_NE(json.find("\"mean_iteration_s\":"), std::string::npos) << json;
}

TEST(CliSmoke, LowerWithoutJobsPrintsUsageAndFails) {
  const CliResult result = RunCli("lower");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.stderr_text.find("--jobs"), std::string::npos)
      << result.stderr_text;
}

TEST(CliSmoke, LowerRejectsNonPositiveChunkAtParseTime) {
  const CliResult result = RunCli(
      "lower --jobs \"{envG:workers=2:ps=1:training:chunk=-4 "
      "model=AlexNet v2 policy=tic iterations=1}\"");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.stderr_text.find("chunk"), std::string::npos)
      << result.stderr_text;
}

TEST(CliSmoke, LowerFlagsAreRejectedElsewhere) {
  const CliResult result = RunCli("run --model \"AlexNet v2\" --dump");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.stderr_text.find("--dump"), std::string::npos)
      << result.stderr_text;
}

TEST(CliSmoke, ClusterSweepRunsAndEmitsJson) {
  const std::string out_path = ::testing::TempDir() + "/tictac_sweep.json";
  const std::string cmd =
      std::string(TICTAC_CLI_PATH) +
      " clustersweep --jobs \"6x{envG:workers=2:ps=1:training"
      " model=AlexNet v2 policy=tac iterations=2 seed=1}\""
      " --fabrics 2 --threads 2 --json >" +
      out_path + " 2>/dev/null";
  int status = std::system(cmd.c_str());
#ifndef _WIN32
  if (WIFEXITED(status)) status = WEXITSTATUS(status);
#endif
  ASSERT_EQ(status, 0);
  std::ifstream in(out_path);
  std::ostringstream text;
  text << in.rdbuf();
  const std::string json = text.str();
  EXPECT_NE(json.find("\"jobs\": 6"), std::string::npos) << json;
  EXPECT_NE(json.find("\"fabrics\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99_job_iteration_s\":"), std::string::npos) << json;
}

TEST(CliSmoke, ClusterSweepWithoutJobsPrintsUsageAndFails) {
  const CliResult result = RunCli("clustersweep");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.stderr_text.find("--jobs"), std::string::npos)
      << result.stderr_text;
}

TEST(CliSmoke, ClusterSweepFlagsAreRejectedElsewhere) {
  const CliResult result = RunCli("run --model \"AlexNet v2\" --threads 4");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.stderr_text.find("--threads"), std::string::npos)
      << result.stderr_text;
}

TEST(CliSmoke, ClusterSweepRejectsNegativeThreads) {
  const CliResult result = RunCli(
      "clustersweep --jobs \"{envG:workers=2:ps=1:training model=AlexNet v2 "
      "policy=tic iterations=1 seed=1}\" --threads -2");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.stderr_text.find("--threads must be >= 0"),
            std::string::npos)
      << result.stderr_text;
}

TEST(CliSmoke, ExecMalformedStragglerIsRejected) {
  const CliResult result = RunCli("exec --straggler fast");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.stderr_text.find("--straggler expects worker=factor"),
            std::string::npos)
      << result.stderr_text;
}

}  // namespace
