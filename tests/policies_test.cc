#include "core/policies.h"

#include <gtest/gtest.h>

#include "core/tic.h"
#include "models/builder.h"
#include "models/zoo.h"

namespace tictac::core {
namespace {

Graph SizedRecvGraph() {
  Graph g;
  g.AddRecv("small", 100, 0);
  g.AddRecv("large", 10000, 1);
  g.AddRecv("medium", 1000, 2);
  const OpId sink = g.AddCompute("sink", 1.0);
  for (OpId r : g.RecvOps()) g.AddEdge(r, sink);
  return g;
}

TEST(Policies, FixedRandomIsAPermutationAndSeedStable) {
  const Graph g = SizedRecvGraph();
  const Schedule a = FixedRandomOrder(g, 42);
  const Schedule b = FixedRandomOrder(g, 42);
  const Schedule c = FixedRandomOrder(g, 43);
  EXPECT_TRUE(a.CoversAllRecvs(g));
  EXPECT_EQ(a.RecvOrder(g), b.RecvOrder(g));
  // Different seed should (for 3! = 6 orders, usually) differ; we only
  // require it to stay a valid permutation.
  EXPECT_TRUE(c.CoversAllRecvs(g));
  std::vector<int> priorities;
  for (OpId r : g.RecvOps()) priorities.push_back(a.priority(r));
  std::sort(priorities.begin(), priorities.end());
  EXPECT_EQ(priorities, (std::vector<int>{0, 1, 2}));
}

TEST(Policies, SmallestFirstOrdersByBytes) {
  const Graph g = SizedRecvGraph();
  const Schedule s = SmallestFirst(g);
  EXPECT_EQ(s.RecvOrder(g), (std::vector<OpId>{0, 2, 1}));
}

TEST(Policies, LargestFirstOrdersByBytesDescending) {
  const Graph g = SizedRecvGraph();
  const Schedule s = LargestFirst(g);
  EXPECT_EQ(s.RecvOrder(g), (std::vector<OpId>{1, 2, 0}));
}

TEST(Policies, ByteOrderTiesAreStableById) {
  Graph g;
  g.AddRecv("a", 100, 0);
  g.AddRecv("b", 100, 1);
  const OpId sink = g.AddCompute("sink", 1.0);
  g.AddEdge(0, sink);
  g.AddEdge(1, sink);
  EXPECT_EQ(SmallestFirst(g).RecvOrder(g), (std::vector<OpId>{0, 1}));
}

TEST(Policies, ReverseOrderInvertsTic) {
  const auto& info = models::FindModel("Inception v1");
  const Graph g = models::BuildWorkerGraph(info, {});
  const Schedule tic = Tic(g);
  const Schedule reversed = ReverseOrder(g, tic);
  auto forward = tic.RecvOrder(g);
  auto backward = reversed.RecvOrder(g);
  std::reverse(backward.begin(), backward.end());
  EXPECT_EQ(forward, backward);
  EXPECT_TRUE(reversed.CoversAllRecvs(g));
}

TEST(Policies, ReverseOfReverseIsIdentityOrder) {
  const Graph g = SizedRecvGraph();
  const Schedule s = SmallestFirst(g);
  const Schedule twice = ReverseOrder(g, ReverseOrder(g, s));
  EXPECT_EQ(s.RecvOrder(g), twice.RecvOrder(g));
}

}  // namespace
}  // namespace tictac::core
