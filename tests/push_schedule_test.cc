#include "core/push_schedule.h"

#include <gtest/gtest.h>

#include "core/chunking.h"
#include "core/tic.h"
#include "models/builder.h"
#include "models/zoo.h"

namespace tictac::core {
namespace {

TEST(OrderSends, SendPriorityMatchesPullRank) {
  const auto& info = models::FindModel("ResNet-50 v1");
  const Graph g = models::BuildWorkerGraph(info, {.training = true});
  const Schedule tic = Tic(g);
  const Schedule with_push = OrderSends(g, tic);

  const auto rank = tic.NormalizedRecvRank(g);
  std::unordered_map<int, int> param_rank;
  for (OpId r : g.RecvOps()) param_rank[g.op(r).param] = rank.at(r);

  for (OpId s : g.OpsOfKind(OpKind::kSend)) {
    ASSERT_TRUE(with_push.HasPriority(s));
    EXPECT_EQ(with_push.priority(s), param_rank.at(g.op(s).param));
  }
}

TEST(OrderSends, RecvPrioritiesUntouched) {
  const auto& info = models::FindModel("AlexNet v2");
  const Graph g = models::BuildWorkerGraph(info, {.training = true});
  const Schedule tic = Tic(g);
  const Schedule with_push = OrderSends(g, tic);
  for (OpId r : g.RecvOps()) {
    EXPECT_EQ(with_push.priority(r), tic.priority(r));
  }
  EXPECT_EQ(with_push.RecvOrder(g), tic.RecvOrder(g));
}

TEST(OrderSends, ComputeOpsStayUnprioritized) {
  const auto& info = models::FindModel("Inception v1");
  const Graph g = models::BuildWorkerGraph(info, {.training = true});
  const Schedule with_push = OrderSends(g, Tic(g));
  for (const Op& op : g.ops()) {
    if (op.kind == OpKind::kCompute) {
      EXPECT_FALSE(with_push.HasPriority(op.id)) << op.name;
    }
  }
}

TEST(OrderSends, WorksOnChunkedGraphs) {
  // Chunked graphs carry several recvs and sends per parameter; every
  // send chunk must inherit the parameter's earliest pull rank.
  const auto& info = models::FindModel("VGG-16");
  Graph g = models::BuildWorkerGraph(info, {.training = true});
  g = ChunkTransfers(g, {.max_chunk_bytes = 8 << 20});
  const Schedule with_push = OrderSends(g, Tic(g));
  std::unordered_map<int, int> seen;
  for (OpId s : g.OpsOfKind(OpKind::kSend)) {
    ASSERT_TRUE(with_push.HasPriority(s));
    const int param = g.op(s).param;
    auto [it, inserted] = seen.try_emplace(param, with_push.priority(s));
    // All chunks of one parameter share the same push priority.
    EXPECT_EQ(it->second, with_push.priority(s));
  }
}

TEST(OrderSends, InferenceGraphIsNoOp) {
  const auto& info = models::FindModel("Inception v2");
  const Graph g = models::BuildWorkerGraph(info, {.training = false});
  const Schedule tic = Tic(g);
  const Schedule with_push = OrderSends(g, tic);
  for (const Op& op : g.ops()) {
    EXPECT_EQ(with_push.priority(op.id), tic.priority(op.id));
  }
}

}  // namespace
}  // namespace tictac::core
