#include "sched/service.h"

#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/session.h"
#include "sched/placement.h"

namespace tictac::sched {
namespace {

runtime::ExperimentSpec Job(int workers = 2, int iterations = 2) {
  runtime::ExperimentSpec spec;
  spec.model = "Inception v2";
  spec.cluster.workers = workers;
  spec.cluster.ps = 1;
  spec.cluster.training = true;
  spec.policy = "tac";
  spec.iterations = iterations;
  return spec;
}

std::string WriteTrace(const std::string& name,
                       const std::vector<std::pair<double, std::string>>&
                           rows) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path);
  for (const auto& [t, spec] : rows) {
    out << runtime::FormatDouble(t) << "," << spec << "\n";
  }
  return path;
}

ServiceConfig TraceConfig(const std::string& path) {
  ServiceConfig config;
  config.arrivals = ArrivalSpec::Parse("trace:" + path);
  config.duration = 10.0;
  return config;
}

// The differential acceptance test: one job arriving at t=0 on one
// fabric IS the single-job Session experiment — per-iteration makespans
// must match bit for bit (the 1-job shared lowering degenerates exactly:
// bandwidth scale 1, identity resource remap, seeds spec.seed + i).
TEST(SchedulerService, SingleJobTraceBitIdenticalToSession) {
  const runtime::ExperimentSpec job = Job(/*workers=*/3, /*iterations=*/4);
  const std::string path =
      WriteTrace("tictac_single.csv", {{0.0, job.ToString()}});
  harness::Session session;
  const runtime::ExperimentResult reference = session.Run(job);

  SchedulerService service(TraceConfig(path));
  const ServiceReport report = service.Run();
  ASSERT_EQ(report.jobs.size(), 1u);
  const JobRecord& record = report.jobs[0];
  ASSERT_EQ(record.iteration_times.size(),
            static_cast<std::size_t>(job.iterations));
  for (std::size_t i = 0; i < record.iteration_times.size(); ++i) {
    EXPECT_EQ(record.iteration_times[i], reference.iterations[i].makespan)
        << "iteration " << i;
  }
  EXPECT_EQ(record.mean_iter_s, reference.MeanIterationTime());
  EXPECT_EQ(record.isolated_iter_s, reference.MeanIterationTime());
  EXPECT_EQ(record.slowdown, 1.0);
  EXPECT_EQ(report.p50_slowdown, 1.0);
  EXPECT_EQ(report.p99_slowdown, 1.0);
  EXPECT_EQ(record.QueueDelay(), 0.0);
  // The service clock left-folds the same iteration times.
  double sum = 0.0;
  for (const auto& it : reference.iterations) sum += it.makespan;
  EXPECT_EQ(report.makespan, sum);
  EXPECT_EQ(report.utilization, 1.0);  // one fabric, busy start to finish
}

TEST(SchedulerService, SameConfigSameSeedBitIdenticalJson) {
  ServiceConfig config;
  config.arrivals = ArrivalSpec::Parse("poisson:rate=8");
  config.workload = {Job()};
  config.fabrics = 2;
  config.duration = 1.0;
  config.seed = 11;
  const ServiceReport a = SchedulerService(config).Run();
  const ServiceReport b = SchedulerService(config).Run();
  EXPECT_EQ(a.ToJson(), b.ToJson());
  EXPECT_EQ(a.JobTraceJson(), b.JobTraceJson());
  config.seed = 12;
  EXPECT_NE(SchedulerService(config).Run().ToJson(), a.ToJson());
}

TEST(SchedulerService, CoLocationSlowsJobsDown) {
  // Four identical jobs arriving together on one fabric contend for the
  // PS NICs: every job must run slower than its isolated baseline.
  const std::string spec = Job(2, 2).ToString();
  const std::string path = WriteTrace(
      "tictac_burst.csv",
      {{0.0, spec}, {0.0, spec}, {0.0, spec}, {0.0, spec}});
  const ServiceReport report =
      SchedulerService(TraceConfig(path)).Run();
  ASSERT_EQ(report.jobs.size(), 4u);
  EXPECT_EQ(report.counters.completed, 4u);
  for (const JobRecord& record : report.jobs) {
    EXPECT_GT(record.slowdown, 1.05) << "job " << record.id;
  }
  EXPECT_GT(report.p50_slowdown, 1.05);
  EXPECT_GE(report.p99_slowdown, report.p50_slowdown);
  EXPECT_GE(report.max_slowdown, report.p99_slowdown);
  // Identical jobs admitted together: contention is symmetric.
  EXPECT_GT(report.mean_fairness, 0.9);
}

TEST(SchedulerService, TwoFabricsIsolateTheLoad) {
  // Same four-job burst, but two fabrics and least-loaded placement:
  // 2 jobs per fabric — strictly less contention than the 4-on-1 case.
  const std::string spec = Job(2, 2).ToString();
  const std::vector<std::pair<double, std::string>> rows = {
      {0.0, spec}, {0.0, spec}, {0.0, spec}, {0.0, spec}};
  ServiceConfig one = TraceConfig(WriteTrace("tictac_one.csv", rows));
  ServiceConfig two = TraceConfig(WriteTrace("tictac_two.csv", rows));
  two.fabrics = 2;
  const ServiceReport crowded = SchedulerService(one).Run();
  const ServiceReport spread = SchedulerService(two).Run();
  EXPECT_LT(spread.mean_slowdown, crowded.mean_slowdown);
  // least-loaded alternates over the empty fabrics: 2 jobs on each.
  EXPECT_EQ(spread.jobs[0].fabric, 0);
  EXPECT_EQ(spread.jobs[1].fabric, 1);
  EXPECT_EQ(spread.jobs[2].fabric, 0);
  EXPECT_EQ(spread.jobs[3].fabric, 1);
}

TEST(SchedulerService, QueueingAndRejectionAccounting) {
  // One fabric, one slot, queue of one: a 4-job burst admits 1, queues
  // 1, rejects 2. The queued job starts only when the first drains.
  const std::string spec = Job(2, 2).ToString();
  ServiceConfig config = TraceConfig(WriteTrace(
      "tictac_queue.csv",
      {{0.0, spec}, {0.0, spec}, {0.0, spec}, {0.0, spec}}));
  config.max_jobs_per_fabric = 1;
  config.admission_queue_capacity = 1;
  const ServiceReport report = SchedulerService(config).Run();
  EXPECT_EQ(report.counters.arrivals, 4u);
  EXPECT_EQ(report.counters.admitted, 2u);
  EXPECT_EQ(report.counters.queued, 1u);
  EXPECT_EQ(report.counters.rejected, 2u);
  EXPECT_EQ(report.counters.completed, 2u);
  ASSERT_EQ(report.jobs.size(), 4u);
  EXPECT_FALSE(report.jobs[0].rejected);
  EXPECT_FALSE(report.jobs[1].rejected);
  EXPECT_TRUE(report.jobs[2].rejected);
  EXPECT_TRUE(report.jobs[3].rejected);
  EXPECT_EQ(report.jobs[2].fabric, -1);
  // The queued job waited exactly one full job's run (no co-location, so
  // both jobs run at isolated speed back to back).
  EXPECT_EQ(report.jobs[0].QueueDelay(), 0.0);
  EXPECT_GT(report.jobs[1].QueueDelay(), 0.0);
  EXPECT_EQ(report.jobs[1].admit_time, report.jobs[0].completion_time);
  EXPECT_EQ(report.jobs[0].slowdown, 1.0);
  EXPECT_EQ(report.jobs[1].slowdown, 1.0);
  EXPECT_GT(report.p99_queue_delay_s, 0.0);
  EXPECT_LE(report.p99_queue_delay_s, report.jobs[1].QueueDelay());
}

// The "no full-world recompute" guarantee: PropertyIndex dependency
// analyses (Runner builds) stay bounded by the distinct contention
// levels while arrivals grow with the duration.
TEST(SchedulerService, PropertyIndexBuildsStayBoundedAsArrivalsGrow) {
  ServiceConfig config;
  config.arrivals = ArrivalSpec::Parse("poisson:rate=25");
  config.workload = {Job(2, 2)};
  config.duration = 1.0;
  config.max_jobs_per_fabric = 4;
  config.seed = 5;
  const ServiceReport report = SchedulerService(config).Run();
  EXPECT_GT(report.counters.arrivals, 15u);
  // One identical template with <= 4 co-residents: the only bandwidth
  // scales are 1, 1/2, 1/3, 1/4 (scale 1 doubles as the isolated
  // baseline), so at most 4 Runner builds ever happen.
  EXPECT_LE(report.counters.property_index_builds, 4u);
  EXPECT_GT(report.counters.runner_cache_hits,
            report.counters.property_index_builds);
  // Re-lowering happens per affected fabric, not per fabric per event:
  // with one fabric it is bounded by arrivals + drains.
  EXPECT_LE(report.counters.fabric_relowerings,
            report.counters.admitted + report.counters.completed);
}

TEST(SchedulerService, JsonShapeIsPinned) {
  const std::string path = WriteTrace("tictac_shape.csv",
                                      {{0.0, Job(2, 2).ToString()}});
  const ServiceReport report =
      SchedulerService(TraceConfig(path)).Run();
  const std::string json = report.ToJson();
  for (const char* key :
       {"\"arrivals\": ", "\"placement\": \"least-loaded\"",
        "\"fabrics\": 1", "\"duration_s\": ", "\"seed\": ",
        "\"jobs\": {\"arrived\": 1, \"admitted\": 1, \"queued\": 0, "
        "\"rejected\": 0, \"completed\": 1}",
        "\"slo\": {\"p50_slowdown\": ", "\"p99_slowdown\": ",
        "\"mean_queue_delay_s\": ", "\"utilization\": ",
        "\"mean_fairness\": ", "\"window_fairness\": [",
        "\"counters\": {\"fabric_relowerings\": ",
        "\"property_index_builds\": ", "\"sim_runs\": "}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key
                                                 << " in:\n" << json;
  }
  const std::string trace = report.JobTraceJson();
  for (const char* key :
       {"\"id\": 0", "\"fabric\": 0", "\"spec\": ", "\"arrival_s\": ",
        "\"queue_delay_s\": ", "\"slowdown\": ", "\"rejected\": false"}) {
    EXPECT_NE(trace.find(key), std::string::npos) << "missing " << key;
  }
}

TEST(SchedulerService, RunServiceDelegates) {
  const std::string path = WriteTrace("tictac_delegate.csv",
                                      {{0.0, Job(2, 2).ToString()}});
  harness::Session session;
  const ServiceReport via_session =
      session.RunService(TraceConfig(path));
  const ServiceReport direct =
      SchedulerService(TraceConfig(path)).Run();
  EXPECT_EQ(via_session.ToJson(), direct.ToJson());
}

TEST(SchedulerService, ValidatesConfig) {
  ServiceConfig config;
  config.arrivals = ArrivalSpec::Parse("poisson:rate=4");
  config.workload = {Job()};
  config.fabrics = 0;
  EXPECT_THROW(SchedulerService{config}, std::invalid_argument);
  config.fabrics = 1;
  config.duration = 0.0;
  EXPECT_THROW(SchedulerService{config}, std::invalid_argument);
  config.duration = 1.0;
  config.placement = "wishful-thinking";
  EXPECT_THROW(SchedulerService{config}, std::invalid_argument);
  config.placement = "least-loaded";
  config.workload.clear();
  EXPECT_THROW(SchedulerService{config}, std::invalid_argument);
}

TEST(SchedulerService, RejectsMixedEnvironmentStreams) {
  runtime::ExperimentSpec cpu = Job();
  cpu.cluster.env = "envC";
  const std::string path = WriteTrace(
      "tictac_mixed.csv",
      {{0.0, Job().ToString()}, {0.1, cpu.ToString()}});
  SchedulerService service(TraceConfig(path));
  try {
    service.Run();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("env"), std::string::npos)
        << e.what();
  }
}

// ---- placement policies ----------------------------------------------------

TEST(PlacementPolicy, LeastLoadedPicksFewestWorkers) {
  const auto policy = MakePlacementPolicy("least-loaded");
  const std::vector<FabricLoad> loads = {{2, 8, 100.0}, {1, 2, 50.0},
                                         {1, 4, 10.0}};
  EXPECT_EQ(policy->Place(Job(), loads, 0, 8), 1);
}

TEST(PlacementPolicy, LeastLoadedSkipsFullFabrics) {
  const auto policy = MakePlacementPolicy("least-loaded");
  const std::vector<FabricLoad> loads = {{1, 2, 0.0}, {2, 8, 0.0}};
  EXPECT_EQ(policy->Place(Job(), loads, 0, 1), -1);  // all full
  EXPECT_EQ(policy->Place(Job(), loads, 0, 2), 0);
}

TEST(PlacementPolicy, RoundRobinRotatesWithDecisionSeq) {
  const auto policy = MakePlacementPolicy("round-robin");
  const std::vector<FabricLoad> loads(3);
  EXPECT_EQ(policy->Place(Job(), loads, 0, 8), 0);
  EXPECT_EQ(policy->Place(Job(), loads, 1, 8), 1);
  EXPECT_EQ(policy->Place(Job(), loads, 2, 8), 2);
  EXPECT_EQ(policy->Place(Job(), loads, 3, 8), 0);
}

TEST(PlacementPolicy, RoundRobinSkipsFullFabric) {
  const auto policy = MakePlacementPolicy("round-robin");
  std::vector<FabricLoad> loads(3);
  loads[1].active_jobs = 2;
  EXPECT_EQ(policy->Place(Job(), loads, 1, 2), 2);  // 1 is full, move on
}

TEST(PlacementPolicy, BestFitPacksTheFullestEligibleFabric) {
  const auto policy = MakePlacementPolicy("best-fit-bytes");
  const std::vector<FabricLoad> loads = {{1, 2, 50.0}, {2, 4, 200.0},
                                         {0, 0, 0.0}};
  EXPECT_EQ(policy->Place(Job(), loads, 0, 8), 1);
  // With fabric 1 at capacity the next-fullest wins.
  EXPECT_EQ(policy->Place(Job(), loads, 0, 2), 0);
}

TEST(PlacementPolicy, UnknownNameListsRegisteredOnes) {
  try {
    MakePlacementPolicy("random");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    for (const std::string& name : PlacementPolicyNames()) {
      EXPECT_NE(what.find(name), std::string::npos) << what;
    }
  }
}

}  // namespace
}  // namespace tictac::sched
