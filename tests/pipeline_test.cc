#include <gtest/gtest.h>

#include "core/tic.h"
#include "models/builder.h"
#include "models/zoo.h"
#include "runtime/lowering.h"
#include "runtime/sharding.h"

namespace tictac::runtime {
namespace {

struct Fixture {
  explicit Fixture(bool training = true, int workers = 2, int ps = 1)
      : info(models::FindModel("Inception v1")),
        config(EnvG(workers, ps, training)),
        graph(models::BuildWorkerGraph(info, {.training = training})),
        ps_of(ShardParams(models::ParamSizes(info), ps)) {
    config.sim.jitter_sigma = 0.0;
    config.sim.out_of_order_probability = 0.0;
  }

  const models::ModelInfo& info;
  ClusterConfig config;
  core::Graph graph;
  std::vector<int> ps_of;
};

TEST(Pipeline, TaskCountsScaleWithIterations) {
  Fixture f;
  const auto once = LowerCluster(f.graph, core::Schedule(), f.ps_of, f.config);
  const auto pipe =
      LowerPipeline(f.graph, core::Schedule(), f.ps_of, f.config, 4);
  EXPECT_EQ(pipe.lowering.tasks.size(), once.tasks.size() * 4);
  EXPECT_EQ(pipe.task_iteration.size(), pipe.lowering.tasks.size());
  EXPECT_EQ(pipe.iterations, 4);
  sim::TaskGraphSim sim = pipe.lowering.BuildSim();
  EXPECT_NO_THROW(sim.Validate());
}

TEST(Pipeline, SingleIterationMatchesLowerCluster) {
  Fixture f;
  const auto once = LowerCluster(f.graph, core::Schedule(), f.ps_of, f.config);
  const auto pipe =
      LowerPipeline(f.graph, core::Schedule(), f.ps_of, f.config, 1);
  sim::TaskGraphSim a(once.tasks, once.num_resources);
  sim::TaskGraphSim b(pipe.lowering.tasks, pipe.lowering.num_resources);
  EXPECT_EQ(a.Run(f.config.sim, 5).makespan, b.Run(f.config.sim, 5).makespan);
}

TEST(Pipeline, SteadyStateBeatsColdIterationTraining) {
  // Pipelining overlaps iteration k+1's pulls with iteration k's tail, so
  // the steady-state per-iteration time must be below the cold first
  // iteration.
  Fixture f(/*training=*/true);
  const core::Schedule tic = core::Tic(f.graph);
  const auto pipe = LowerPipeline(f.graph, tic, f.ps_of, f.config, 6);
  sim::TaskGraphSim sim = pipe.lowering.BuildSim();
  sim::SimOptions options = f.config.sim;
  options.enforce_gates = true;
  const auto timing = ComputePipelineTiming(pipe, sim.Run(options, 1));
  EXPECT_LT(timing.steady_state, timing.first_iteration);
  EXPECT_GT(timing.steady_state, 0.0);
}

TEST(Pipeline, IterationFinishTimesMonotone) {
  Fixture f;
  const auto pipe =
      LowerPipeline(f.graph, core::Schedule(), f.ps_of, f.config, 5);
  sim::TaskGraphSim sim = pipe.lowering.BuildSim();
  const auto timing = ComputePipelineTiming(pipe, sim.Run(f.config.sim, 2));
  ASSERT_EQ(timing.iteration_finish.size(), 5u);
  for (std::size_t k = 1; k < timing.iteration_finish.size(); ++k) {
    EXPECT_GT(timing.iteration_finish[k], timing.iteration_finish[k - 1]);
  }
}

TEST(Pipeline, TrainingIterationsRespectUpdateDependency) {
  // Without cross-iteration dependencies two iterations could fully
  // overlap; with them, total time must exceed a single iteration's by a
  // non-trivial margin.
  Fixture f(/*training=*/true);
  const auto one = LowerPipeline(f.graph, core::Schedule(), f.ps_of,
                                 f.config, 1);
  const auto two = LowerPipeline(f.graph, core::Schedule(), f.ps_of,
                                 f.config, 2);
  sim::TaskGraphSim sim1 = one.lowering.BuildSim();
  sim::TaskGraphSim sim2 = two.lowering.BuildSim();
  const double t1 = sim1.Run(f.config.sim, 3).makespan;
  const double t2 = sim2.Run(f.config.sim, 3).makespan;
  EXPECT_GT(t2, t1 * 1.3);
  EXPECT_LT(t2, t1 * 2.1);
}

TEST(Pipeline, InferenceServingLoopSerializesPerWorker) {
  Fixture f(/*training=*/false);
  const auto pipe =
      LowerPipeline(f.graph, core::Schedule(), f.ps_of, f.config, 3);
  sim::TaskGraphSim sim = pipe.lowering.BuildSim();
  const sim::SimResult result = sim.Run(f.config.sim, 7);
  const auto timing = ComputePipelineTiming(pipe, result);
  // Three serving steps cannot be faster than one (per-worker serial
  // forward passes), nor slower than three cold steps.
  EXPECT_GT(timing.iteration_finish.back(), timing.first_iteration * 1.5);
  EXPECT_LE(timing.iteration_finish.back(), timing.first_iteration * 3.001);
}

TEST(Pipeline, GateGroupsAreDistinctPerIteration) {
  Fixture f;
  const core::Schedule tic = core::Tic(f.graph);
  const auto pipe = LowerPipeline(f.graph, tic, f.ps_of, f.config, 3);
  int max_group = -1;
  for (const sim::Task& t : pipe.lowering.tasks) {
    max_group = std::max(max_group, t.gate_group);
  }
  // 3 iterations x 2 workers -> groups 0..5.
  EXPECT_EQ(max_group, 5);
}

TEST(Pipeline, RejectsZeroIterations) {
  Fixture f;
  EXPECT_THROW(
      LowerPipeline(f.graph, core::Schedule(), f.ps_of, f.config, 0),
      std::invalid_argument);
}

}  // namespace
}  // namespace tictac::runtime
