// Flow-level max-min fairness differentials (DESIGN.md §11).
//
// The anchor: flow fairness OFF — or a null/flow-less network — must be
// byte-for-byte identical to the static bandwidth/T split engine, across
// the model zoo, the scheduling policies, and the multi-job shared
// fabric. On top of that, the flow model's semantics are pinned on
// hand-built graphs where the max-min allocation is computable by hand:
// a lone flow takes the whole link, a fully-loaded link reproduces the
// static split exactly, and a departure hands the idle share to the
// survivors mid-flight.
#include "sim/flow.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/multijob.h"
#include "runtime/spec.h"
#include "sim/engine.h"

namespace tictac {
namespace {

void ExpectSameResult(const sim::SimResult& a, const sim::SimResult& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.start, b.start);
  EXPECT_EQ(a.end, b.end);
  EXPECT_EQ(a.start_order, b.start_order);
}

sim::Task FlowTask(double duration, int resource,
                   std::vector<sim::TaskId> preds = {}) {
  sim::Task t;
  t.duration = duration;
  t.resource = resource;
  t.preds = std::move(preds);
  return t;
}

runtime::MultiJobRunner MakeRunner(const std::string& cluster,
                                   const std::string& model,
                                   const std::string& policy) {
  runtime::MultiJobSpec spec;
  runtime::MultiJobEntry entry;
  entry.spec = runtime::ExperimentSpec::Parse(
      cluster + " model=" + model + " policy=" + policy +
      " iterations=2 seed=3");
  spec.jobs.push_back(entry);
  return runtime::MultiJobRunner(std::move(spec));
}

// A two-channel shared link at twice the per-channel nominal rate: the
// static split gives each channel 50 B/s of the 100 B/s link.
sim::FlowNetwork TwoChannelLink() {
  sim::FlowNetwork net;
  net.links = {{100.0}};
  net.resource_links = {{0}, {0}};
  net.resource_nominal_bps = {50.0, 50.0};
  return net;
}

TEST(FlowModel, OffOrFlowlessNetworkIsBitIdenticalToTheStaticSplit) {
  for (const char* model : {"AlexNet v2", "Inception v2"}) {
    for (const char* policy : {"baseline", "tic", "tac"}) {
      SCOPED_TRACE(std::string(model) + " / " + policy);
      // Same jobs, lowered twice: once with the flow network attached
      // (":flow") and once without. The tasks are identical — the pass
      // only attaches capacities — so running the flow lowering with
      // fairness off must reproduce the legacy lowering exactly.
      runtime::MultiJobRunner with_net =
          MakeRunner("envG:workers=4:ps=2:training:flow", model, policy);
      runtime::MultiJobRunner legacy =
          MakeRunner("envG:workers=4:ps=2:training", model, policy);
      ASSERT_NE(with_net.sim_options().network, nullptr);
      ASSERT_EQ(legacy.sim_options().network, nullptr);

      const sim::TaskGraphSim sim = with_net.lowering().combined.BuildSim();
      const sim::TaskGraphSim legacy_sim =
          legacy.lowering().combined.BuildSim();
      const sim::SimResult reference =
          legacy_sim.Run(legacy.sim_options(), 42);

      sim::SimOptions off_with_net = with_net.sim_options();
      off_with_net.flow_fairness = false;
      ExpectSameResult(sim.Run(off_with_net, 42), reference);

      sim::SimOptions on_null_net = with_net.sim_options();
      on_null_net.network = nullptr;
      ExpectSameResult(sim.Run(on_null_net, 42), reference);
    }
  }
}

TEST(FlowModel, MultiJobFlowOffMatchesLegacyByteForByte) {
  const auto make = [](bool flow) {
    runtime::MultiJobSpec spec;
    const std::string cluster =
        flow ? "envG:workers=2:ps=2:training:flow"
             : "envG:workers=2:ps=2:training";
    for (const char* model : {"AlexNet v2", "Inception v2"}) {
      runtime::MultiJobEntry entry;
      entry.spec = runtime::ExperimentSpec::Parse(
          cluster + " model=" + std::string(model) +
          " policy=tac iterations=2 seed=3");
      spec.jobs.push_back(entry);
    }
    return runtime::MultiJobRunner(std::move(spec));
  };
  const runtime::MultiJobRunner with_net = make(true);
  const runtime::MultiJobRunner legacy = make(false);
  const sim::TaskGraphSim sim = with_net.lowering().combined.BuildSim();
  const sim::TaskGraphSim legacy_sim = legacy.lowering().combined.BuildSim();
  sim::SimOptions off = with_net.sim_options();
  off.flow_fairness = false;
  for (const std::uint64_t seed : {1ull, 7ull}) {
    ExpectSameResult(sim.Run(off, seed),
                     legacy_sim.Run(legacy.sim_options(), seed));
  }
}

TEST(FlowModel, SingleActiveFlowTakesTheWholeLink) {
  const sim::FlowNetwork net = TwoChannelLink();
  sim::TaskGraphSim sim({FlowTask(1.0, 0)}, 2);
  sim::SimOptions options;
  options.flow_fairness = true;
  options.network = &net;
  const sim::SimResult r = sim.Run(options, 1);
  // Alone on the 100 B/s link, the 50 B/s-nominal channel runs at rate
  // 2.0: the 1 s task finishes in 0.5 s.
  EXPECT_DOUBLE_EQ(r.end[0], 0.5);
  EXPECT_DOUBLE_EQ(r.makespan, 0.5);
}

TEST(FlowModel, FullyLoadedLinkReproducesTheStaticSplit) {
  const sim::FlowNetwork net = TwoChannelLink();
  const std::vector<sim::Task> tasks{FlowTask(1.0, 0), FlowTask(2.0, 1)};
  sim::TaskGraphSim sim(tasks, 2);
  sim::SimOptions on;
  on.flow_fairness = true;
  on.network = &net;
  // Both channels active from t = 0: each gets its 50 B/s nominal share
  // while the other runs... but the 1 s flow finishes first and frees
  // its share, so only the fully-overlapped prefix matches the split.
  const sim::SimResult r = sim.Run(on, 1);
  EXPECT_DOUBLE_EQ(r.end[0], 1.0);  // contended the whole way: unchanged
  // Task 1: 1 s at rate 1 (1.0 of 2.0 done), then alone at rate 2 for
  // the remaining 1.0 -> finishes at 1.5 instead of the static 2.0.
  EXPECT_DOUBLE_EQ(r.end[1], 1.5);

  // With both flows pinned for their whole lifetime (equal durations),
  // flow on is byte-for-byte the static split.
  sim::TaskGraphSim pinned({FlowTask(1.0, 0), FlowTask(1.0, 1)}, 2);
  sim::SimOptions off;
  ExpectSameResult(pinned.Run(on, 5), pinned.Run(off, 5));
}

TEST(FlowModel, DepartureHandsIdleShareToSurvivorMidFlight) {
  const sim::FlowNetwork net = TwoChannelLink();
  // Task 1 depends on nothing but lives longer; after task 0 departs at
  // t = 1 the survivor's rate doubles mid-transfer.
  sim::TaskGraphSim sim({FlowTask(1.0, 0), FlowTask(3.0, 1)}, 2);
  sim::SimOptions options;
  options.flow_fairness = true;
  options.network = &net;
  const sim::SimResult r = sim.Run(options, 1);
  EXPECT_DOUBLE_EQ(r.end[0], 1.0);
  // 1 s at rate 1 leaves 2.0 nominal seconds; at rate 2 that is 1 s of
  // wall clock: end = 2.0, not the static 3.0.
  EXPECT_DOUBLE_EQ(r.end[1], 2.0);
}

TEST(FlowModel, OversubscribedCoreSlowsCrossPodTransfers) {
  const auto mean_iteration = [](const std::string& cluster) {
    return MakeRunner(cluster, "AlexNet v2", "tac")
        .Run(2, 7)
        .combined.MeanIterationTime();
  };
  // Pin jitter/ooo to zero so the three runs differ only in the network
  // model, never in random draws.
  const std::string base = "envG:workers=4:ps=2:training:jitter=0:ooo=0";
  const double static_split = mean_iteration(base);
  const double nic_only = mean_iteration(base + ":flow");
  const double oversubscribed =
      mean_iteration(base + ":flow:pods=2:oversub=64");
  // Without an oversubscribed core the flow model can only hand out idle
  // bandwidth: never slower than the static split.
  EXPECT_LE(nic_only, static_split + 1e-9);
  // A 64:1 core chokes every cross-pod transfer well below its nominal
  // rate.
  EXPECT_GT(oversubscribed, nic_only);
}

TEST(FlowNetwork, ValidateNamesTheOffendingEntry) {
  const auto expect_throw = [](const sim::FlowNetwork& net, int resources,
                               const std::string& fragment) {
    try {
      net.Validate(resources);
      FAIL() << "expected invalid_argument containing '" << fragment << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << "message was: " << e.what();
    }
  };
  sim::FlowNetwork bad_link = TwoChannelLink();
  bad_link.resource_links[0] = {3};
  expect_throw(bad_link, 2, "link");

  sim::FlowNetwork bad_capacity = TwoChannelLink();
  bad_capacity.links[0].capacity_bps = 0.0;
  expect_throw(bad_capacity, 2, "capacity");

  sim::FlowNetwork bad_nominal = TwoChannelLink();
  bad_nominal.resource_nominal_bps[1] = 0.0;
  expect_throw(bad_nominal, 2, "nominal");

  sim::FlowNetwork too_wide = TwoChannelLink();
  expect_throw(too_wide, 1, "resource");
}

TEST(FlowModel, RingTopologyRejectsFlowFairness) {
  try {
    runtime::ExperimentSpec::Parse(
        "envG:workers=4:ps=1:training:topology=ring:flow model=AlexNet v2");
    FAIL() << "expected the ring + flow combination to be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("flow"), std::string::npos)
        << "message was: " << e.what();
  }
}

}  // namespace
}  // namespace tictac
