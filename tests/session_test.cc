// harness::Session: Runner caching, the parallel sweep executor's
// determinism (bit-identical to serial execution), result emitters, and
// error propagation.
#include "harness/session.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "models/zoo.h"

namespace tictac::harness {
namespace {

runtime::ExperimentSpec SmallSpec(const std::string& model,
                                  const std::string& policy,
                                  std::uint64_t seed = 3,
                                  int iterations = 2) {
  runtime::ExperimentSpec spec;
  spec.model = model;
  spec.cluster.workers = 2;
  spec.cluster.ps = 1;
  spec.policy = policy;
  spec.seed = seed;
  spec.iterations = iterations;
  return spec;
}

TEST(Session, RunMatchesDirectRunnerBitForBit) {
  const auto spec = SmallSpec("Inception v1", "tic");
  Session session;
  const auto via_session = session.Run(spec);
  const runtime::Runner runner(models::FindModel(spec.model),
                               spec.BuildCluster());
  const auto direct = runner.Run(spec.policy, spec.iterations, spec.seed);
  ASSERT_EQ(via_session.iterations.size(), direct.iterations.size());
  for (std::size_t i = 0; i < direct.iterations.size(); ++i) {
    EXPECT_EQ(via_session.iterations[i].makespan,
              direct.iterations[i].makespan);
    EXPECT_EQ(via_session.iterations[i].recv_order,
              direct.iterations[i].recv_order);
  }
}

TEST(Session, CachesOneRunnerPerModelClusterPair) {
  Session session;
  const auto tic = SmallSpec("Inception v1", "tic");
  const auto tac = SmallSpec("Inception v1", "tac", /*seed=*/9);
  session.Run(tic);
  session.Run(tac);  // different policy + seed, same graph
  EXPECT_EQ(session.cached_runners(), 1u);
  EXPECT_EQ(&session.runner(tic), &session.runner(tac));

  auto training = tic;
  training.cluster.training = true;  // different graph
  session.Run(training);
  EXPECT_EQ(session.cached_runners(), 2u);

  session.Run(SmallSpec("AlexNet v2", "tic"));  // different model
  EXPECT_EQ(session.cached_runners(), 3u);
}

TEST(Session, ParallelRunAllBitIdenticalToSerial) {
  runtime::SweepSpec sweep;
  sweep.models = {"Inception v1", "AlexNet v2"};
  sweep.workers = {2, 4};
  sweep.ps = {1};
  sweep.tasks = {false, true};
  sweep.policies = {"baseline", "tic"};
  sweep.iterations = 2;
  sweep.seed = 13;
  const auto specs = sweep.Expand();

  Session serial_session;
  const ResultTable serial = serial_session.RunAll(specs, 1);
  Session parallel_session;
  const ResultTable parallel = parallel_session.RunAll(specs, 8);

  ASSERT_EQ(serial.size(), specs.size());
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial.row(i).spec, specs[i]);  // rows in spec order
    EXPECT_EQ(parallel.row(i).spec, serial.row(i).spec);
    EXPECT_EQ(parallel.row(i).mean_iteration_s,
              serial.row(i).mean_iteration_s);
    EXPECT_EQ(parallel.row(i).throughput, serial.row(i).throughput);
    EXPECT_EQ(parallel.row(i).mean_efficiency,
              serial.row(i).mean_efficiency);
    EXPECT_EQ(parallel.row(i).mean_overlap, serial.row(i).mean_overlap);
    EXPECT_EQ(parallel.row(i).max_straggler_pct,
              serial.row(i).max_straggler_pct);
    EXPECT_EQ(parallel.row(i).mean_straggler_pct,
              serial.row(i).mean_straggler_pct);
    EXPECT_EQ(parallel.row(i).unique_recv_orders,
              serial.row(i).unique_recv_orders);
  }
  // Identical emitted artifacts, not just identical numbers.
  EXPECT_EQ(serial.ToCsv(), parallel.ToCsv());
  EXPECT_EQ(serial.ToJson(), parallel.ToJson());
}

TEST(Session, ParallelismExceedingSpecCountIsFine) {
  Session session;
  const std::vector<runtime::ExperimentSpec> specs = {
      SmallSpec("AlexNet v2", "tic")};
  const ResultTable table = session.RunAll(specs, 64);
  ASSERT_EQ(table.size(), 1u);
  EXPECT_GT(table.row(0).throughput, 0.0);
}

TEST(Session, SpeedupVsBaseline) {
  Session session;
  const std::vector<runtime::ExperimentSpec> specs = {
      SmallSpec("Inception v2", "baseline", 7, 4),
      SmallSpec("Inception v2", "tic", 7, 4),
  };
  const ResultTable table = session.RunAll(specs, 2);
  const double speedup = table.SpeedupVsBaseline(table.row(1));
  EXPECT_EQ(speedup,
            table.row(1).throughput / table.row(0).throughput - 1.0);
  // The baseline row's own speedup is exactly zero.
  EXPECT_EQ(table.SpeedupVsBaseline(table.row(0)), 0.0);
  // A table without the matching baseline row refuses.
  const ResultTable no_base = session.RunAll(
      std::vector<runtime::ExperimentSpec>{SmallSpec("VGG-16", "tic")}, 1);
  EXPECT_THROW(no_base.SpeedupVsBaseline(no_base.row(0)),
               std::invalid_argument);
}

TEST(Session, CsvAndJsonEmitters) {
  Session session;
  auto slow_worker = SmallSpec("AlexNet v2", "tic");
  slow_worker.cluster.worker_speed_factors = {1.0, 0.5};
  const std::vector<runtime::ExperimentSpec> specs = {
      SmallSpec("AlexNet v2", "baseline"), slow_worker};
  const ResultTable table = session.RunAll(specs, 2);

  const std::string csv = table.ToCsv();
  std::size_t lines = 0;
  for (const char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, 3u);  // header + 2 rows
  EXPECT_EQ(csv.find("spec,model,env,workers"), 0u);
  EXPECT_NE(csv.find("envG:workers=2:ps=1:inference model=AlexNet v2 "
                     "policy=baseline iterations=2 seed=3"),
            std::string::npos);
  // A spec containing commas (the speeds= list) arrives CSV-quoted.
  EXPECT_NE(csv.find("\"envG:workers=2:ps=1:inference:speeds=1,0.5 "
                     "model=AlexNet v2 policy=tic iterations=2 seed=3\""),
            std::string::npos);

  const std::string json = table.ToJson();
  EXPECT_EQ(json.front(), '[');
  std::size_t objects = 0;
  for (const char c : json) objects += c == '{';
  EXPECT_EQ(objects, 2u);
  EXPECT_NE(json.find("\"model\": \"AlexNet v2\""), std::string::npos);
  EXPECT_NE(json.find("\"policy\": \"baseline\""), std::string::npos);
  EXPECT_NE(json.find("\"throughput\": "), std::string::npos);

  EXPECT_EQ(table.ToTable().rows(), 2u);
}

TEST(Session, InvalidSpecsThrow) {
  Session session;
  auto bad_iterations = SmallSpec("AlexNet v2", "tic");
  bad_iterations.iterations = 0;
  EXPECT_THROW(session.Run(bad_iterations), std::invalid_argument);

  auto bad_model = SmallSpec("No Such Net", "tic");
  EXPECT_THROW(session.Run(bad_model), std::out_of_range);

  auto bad_policy = SmallSpec("AlexNet v2", "no-such-policy");
  EXPECT_THROW(session.Run(bad_policy), std::invalid_argument);

  EXPECT_THROW(session.RunAll({SmallSpec("AlexNet v2", "tic")}, 0),
               std::invalid_argument);
}

TEST(Session, RunAllPropagatesWorkerExceptions) {
  Session session;
  std::vector<runtime::ExperimentSpec> specs = {
      SmallSpec("AlexNet v2", "tic"),
      SmallSpec("AlexNet v2", "no-such-policy"),
      SmallSpec("Inception v1", "tic"),
  };
  EXPECT_THROW(session.RunAll(specs, 3), std::invalid_argument);
  EXPECT_THROW(session.RunAll(specs, 1), std::invalid_argument);
}

TEST(Session, FailedConstructionLeavesNoCacheEntry) {
  Session session;
  EXPECT_THROW(session.Run(SmallSpec("No Such Net", "tic")),
               std::out_of_range);
  EXPECT_EQ(session.cached_runners(), 0u);
  // The key is retryable after a failure.
  auto fixed = SmallSpec("AlexNet v2", "tic");
  EXPECT_GT(session.Run(fixed).Throughput(), 0.0);
  EXPECT_EQ(session.cached_runners(), 1u);
}

TEST(Session, EmptySpecListYieldsEmptyTable) {
  Session session;
  const ResultTable table = session.RunAll(
      std::vector<runtime::ExperimentSpec>{}, 4);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.ToJson(), "[\n]\n");
}

TEST(Session, DefaultParallelismIsPositive) {
  EXPECT_GE(Session::DefaultParallelism(), 1);
}

}  // namespace
}  // namespace tictac::harness
