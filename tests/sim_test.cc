#include "sim/engine.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace tictac::sim {
namespace {

Task MakeTask(double duration, int resource,
              std::vector<TaskId> preds = {}) {
  Task t;
  t.duration = duration;
  t.resource = resource;
  t.preds = std::move(preds);
  return t;
}

TEST(Engine, SingleResourceSerializes) {
  std::vector<Task> tasks{MakeTask(1.0, 0), MakeTask(2.0, 0),
                          MakeTask(3.0, 0)};
  TaskGraphSim sim(std::move(tasks), 1);
  sim.Validate();
  const SimResult r = sim.Run({}, 1);
  EXPECT_DOUBLE_EQ(r.makespan, 6.0);
}

TEST(Engine, IndependentResourcesRunInParallel) {
  std::vector<Task> tasks{MakeTask(5.0, 0), MakeTask(3.0, 1)};
  TaskGraphSim sim(std::move(tasks), 2);
  const SimResult r = sim.Run({}, 1);
  EXPECT_DOUBLE_EQ(r.makespan, 5.0);
  EXPECT_DOUBLE_EQ(r.start[1], 0.0);
}

TEST(Engine, DependencyChainSerializesAcrossResources) {
  std::vector<Task> tasks{MakeTask(1.0, 0), MakeTask(2.0, 1, {0}),
                          MakeTask(3.0, 0, {1})};
  TaskGraphSim sim(std::move(tasks), 2);
  const SimResult r = sim.Run({}, 1);
  EXPECT_DOUBLE_EQ(r.makespan, 6.0);
  EXPECT_DOUBLE_EQ(r.start[1], 1.0);
  EXPECT_DOUBLE_EQ(r.start[2], 3.0);
}

// Figure 1: recv1, recv2 on the NIC (resource 1); op1, op2 on the
// processor (resource 0). op1 needs recv1; op2 needs op1 and recv2.
TEST(Engine, Fig1GoodOrderBeatsBadOrder) {
  // Good order (recv1 first): makespan 3. Bad order (recv2 first): 4.
  for (const bool good : {true, false}) {
    std::vector<Task> tasks;
    Task recv1 = MakeTask(1.0, 1);
    recv1.priority = good ? 0 : 1;
    Task recv2 = MakeTask(1.0, 1);
    recv2.priority = good ? 1 : 0;
    tasks.push_back(recv1);                    // 0
    tasks.push_back(recv2);                    // 1
    tasks.push_back(MakeTask(1.0, 0, {0}));    // 2: op1 <- recv1
    tasks.push_back(MakeTask(1.0, 0, {2, 1})); // 3: op2 <- op1, recv2
    TaskGraphSim sim(std::move(tasks), 2);
    const SimResult r = sim.Run({}, 7);
    EXPECT_DOUBLE_EQ(r.makespan, good ? 3.0 : 4.0);
  }
}

TEST(Engine, PrioritySelectsLowestNumber) {
  std::vector<Task> tasks;
  for (int i = 0; i < 4; ++i) {
    Task t = MakeTask(1.0, 0);
    t.priority = 3 - i;  // task 3 has priority 0
    tasks.push_back(t);
  }
  TaskGraphSim sim(std::move(tasks), 1);
  const SimResult r = sim.Run({}, 5);
  EXPECT_EQ(r.start_order, (std::vector<TaskId>{3, 2, 1, 0}));
}

TEST(Engine, SparseAndNegativePrioritiesOrderCorrectly) {
  // Priorities are rank-compressed internally; arbitrary (even negative)
  // numbers must still order by value.
  std::vector<Task> tasks;
  const int priorities[] = {1000000, -5, 0, 42};
  for (const int p : priorities) {
    Task t = MakeTask(1.0, 0);
    t.priority = p;
    tasks.push_back(t);
  }
  TaskGraphSim sim(std::move(tasks), 1);
  const SimResult r = sim.Run({}, 11);
  EXPECT_EQ(r.start_order, (std::vector<TaskId>{1, 2, 3, 0}));
}

TEST(Engine, LongGateCascadeReleasesAllRanks) {
  // All 64 gated transfers become dependency-ready at t=0 with ranks
  // reversed w.r.t. id; activating rank 0 must cascade-release the
  // entire chain in rank order.
  constexpr int kRanks = 64;
  std::vector<Task> tasks;
  for (int i = 0; i < kRanks; ++i) {
    Task t = MakeTask(1.0, 0);
    t.gate_group = 0;
    t.gate_rank = kRanks - 1 - i;
    t.priority = kRanks - 1 - i;
    tasks.push_back(t);
  }
  TaskGraphSim sim(std::move(tasks), 1);
  sim.Validate();
  SimOptions opts;
  opts.enforce_gates = true;
  const SimResult r = sim.Run(opts, 13);
  ASSERT_EQ(r.start_order.size(), static_cast<std::size_t>(kRanks));
  for (int i = 0; i < kRanks; ++i) {
    EXPECT_EQ(r.start_order[static_cast<std::size_t>(i)],
              static_cast<TaskId>(kRanks - 1 - i));
  }
  EXPECT_DOUBLE_EQ(r.makespan, static_cast<double>(kRanks));
}

TEST(Engine, UnprioritizedTasksCompeteWithLowest) {
  // One priority-5 task and one unprioritized task: both are candidates,
  // so across seeds each should win sometimes.
  int unprioritized_first = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    std::vector<Task> tasks;
    Task a = MakeTask(1.0, 0);
    a.priority = 5;
    Task b = MakeTask(1.0, 0);  // no priority
    tasks.push_back(a);
    tasks.push_back(b);
    TaskGraphSim sim(std::move(tasks), 1);
    const SimResult r = sim.Run({}, seed);
    if (r.start_order.front() == 1) ++unprioritized_first;
  }
  EXPECT_GT(unprioritized_first, 5);
  EXPECT_LT(unprioritized_first, 35);
}

TEST(Engine, BaselineOrderVariesAcrossSeeds) {
  auto make = [] {
    std::vector<Task> tasks;
    for (int i = 0; i < 8; ++i) tasks.push_back(MakeTask(1.0, 0));
    return tasks;
  };
  TaskGraphSim sim(make(), 1);
  const auto a = sim.Run({}, 1).start_order;
  const auto b = sim.Run({}, 2).start_order;
  EXPECT_NE(a, b);
}

TEST(Engine, DeterministicForSameSeed) {
  std::vector<Task> tasks;
  for (int i = 0; i < 16; ++i) {
    tasks.push_back(MakeTask(0.5 + 0.1 * i, i % 3));
  }
  TaskGraphSim sim(std::move(tasks), 3);
  SimOptions opts;
  opts.jitter_sigma = 0.1;
  const SimResult a = sim.Run(opts, 99);
  const SimResult b = sim.Run(opts, 99);
  EXPECT_EQ(a.start_order, b.start_order);
  EXPECT_EQ(a.end, b.end);
}

TEST(Engine, GatesEnforceHandoffOrderOnOneChannel) {
  // Three gated transfers on one channel with ranks 2, 1, 0 by id: wire
  // order must follow rank order.
  std::vector<Task> tasks;
  for (int i = 0; i < 3; ++i) {
    Task t = MakeTask(1.0, 0);
    t.gate_group = 0;
    t.gate_rank = 2 - i;
    t.priority = 2 - i;
    tasks.push_back(t);
  }
  TaskGraphSim sim(std::move(tasks), 1);
  SimOptions opts;
  opts.enforce_gates = true;
  const SimResult r = sim.Run(opts, 3);
  EXPECT_EQ(r.start_order, (std::vector<TaskId>{2, 1, 0}));
}

TEST(Engine, GateHandoffDoesNotBlockOtherChannels) {
  // Rank 0 is a long transfer on channel 0; rank 1 lives on channel 1.
  // Hand-off (enqueue) happens at activation, so channel 1 must start its
  // transfer immediately rather than waiting for channel 0's wire time.
  std::vector<Task> tasks;
  Task big = MakeTask(10.0, 0);
  big.gate_group = 0;
  big.gate_rank = 0;
  Task small = MakeTask(1.0, 1);
  small.gate_group = 0;
  small.gate_rank = 1;
  tasks.push_back(big);
  tasks.push_back(small);
  TaskGraphSim sim(std::move(tasks), 2);
  SimOptions opts;
  opts.enforce_gates = true;
  const SimResult r = sim.Run(opts, 3);
  EXPECT_DOUBLE_EQ(r.start[1], 0.0);
  EXPECT_DOUBLE_EQ(r.makespan, 10.0);
}

TEST(Engine, GateWaitsForPredecessorRankActivation) {
  // Rank 1's transfer is dependency-ready at t=0, but rank 0 only
  // activates after a 5s compute: rank 1 must not be handed off first.
  std::vector<Task> tasks;
  tasks.push_back(MakeTask(5.0, 1));  // 0: compute gating rank 0's recv
  Task first = MakeTask(1.0, 0, {0});
  first.gate_group = 0;
  first.gate_rank = 0;
  Task second = MakeTask(1.0, 0);
  second.gate_group = 0;
  second.gate_rank = 1;
  tasks.push_back(first);   // 1
  tasks.push_back(second);  // 2
  TaskGraphSim sim(std::move(tasks), 2);
  SimOptions opts;
  opts.enforce_gates = true;
  const SimResult r = sim.Run(opts, 3);
  EXPECT_DOUBLE_EQ(r.start[1], 5.0);
  EXPECT_DOUBLE_EQ(r.start[2], 6.0);
}

TEST(Engine, GatesIgnoredWhenDisabled) {
  std::vector<Task> tasks;
  Task a = MakeTask(1.0, 0);
  a.gate_group = 0;
  a.gate_rank = 1;  // would be second with gates on
  Task b = MakeTask(1.0, 1);
  b.gate_group = 0;
  b.gate_rank = 0;
  tasks.push_back(a);
  tasks.push_back(b);
  TaskGraphSim sim(std::move(tasks), 2);
  SimOptions opts;
  opts.enforce_gates = false;
  const SimResult r = sim.Run(opts, 3);
  EXPECT_DOUBLE_EQ(r.makespan, 1.0);  // both start at 0 on their channels
}

TEST(Engine, OutOfOrderInjectionScramblesPriorities) {
  SimOptions opts;
  opts.out_of_order_probability = 1.0;
  int scrambled = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    std::vector<Task> tasks;
    for (int i = 0; i < 6; ++i) {
      Task t = MakeTask(1.0, 0);
      t.priority = i;
      tasks.push_back(t);
    }
    TaskGraphSim sim(std::move(tasks), 1);
    const SimResult r = sim.Run(opts, seed);
    std::vector<TaskId> in_order(6);
    for (int i = 0; i < 6; ++i) in_order[static_cast<std::size_t>(i)] = i;
    if (r.start_order != in_order) ++scrambled;
  }
  EXPECT_GT(scrambled, 25);
}

TEST(Engine, JitterPerturbsDurationsDeterministically) {
  std::vector<Task> tasks{MakeTask(1.0, 0)};
  TaskGraphSim sim(std::move(tasks), 1);
  SimOptions opts;
  opts.jitter_sigma = 0.2;
  const double a = sim.Run(opts, 1).makespan;
  const double b = sim.Run(opts, 1).makespan;
  const double c = sim.Run(opts, 2).makespan;
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_GT(a, 0.0);
}

TEST(Engine, MakespanNeverExceedsSerialTotal) {
  // Work conservation: some resource is always busy, so the makespan is
  // bounded by the serial sum of durations.
  util::Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Task> tasks;
    double total = 0.0;
    for (int i = 0; i < 30; ++i) {
      Task t = MakeTask(rng.Uniform(0.1, 1.0),
                        static_cast<int>(rng.Index(4)));
      if (i > 0 && rng.Chance(0.5)) {
        t.preds.push_back(static_cast<TaskId>(rng.Index(static_cast<std::size_t>(i))));
      }
      total += t.duration;
      tasks.push_back(t);
    }
    TaskGraphSim sim(std::move(tasks), 4);
    sim.Validate();
    const SimResult r = sim.Run({}, static_cast<std::uint64_t>(trial));
    EXPECT_LE(r.makespan, total + 1e-9);
    EXPECT_EQ(r.start_order.size(), 30u);
  }
}

TEST(Engine, AllTasksCompleteWithEndAfterStart) {
  std::vector<Task> tasks{MakeTask(1.0, 0), MakeTask(2.0, 1, {0}),
                          MakeTask(0.5, 0, {1})};
  TaskGraphSim sim(std::move(tasks), 2);
  const SimResult r = sim.Run({}, 1);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GT(r.end[i], r.start[i]);
  }
}

TEST(Validate, RejectsBadGraphs) {
  {
    std::vector<Task> tasks{MakeTask(1.0, 5)};
    TaskGraphSim sim(std::move(tasks), 2);
    EXPECT_THROW(sim.Validate(), std::invalid_argument);
  }
  {
    std::vector<Task> tasks{MakeTask(-1.0, 0)};
    TaskGraphSim sim(std::move(tasks), 1);
    EXPECT_THROW(sim.Validate(), std::invalid_argument);
  }
  {
    std::vector<Task> tasks{MakeTask(1.0, 0, {0})};  // self-loop
    TaskGraphSim sim(std::move(tasks), 1);
    EXPECT_THROW(sim.Validate(), std::invalid_argument);
  }
  {
    // Gate ranks must be dense per group.
    Task a = MakeTask(1.0, 0);
    a.gate_group = 0;
    a.gate_rank = 1;
    std::vector<Task> tasks{a};
    TaskGraphSim sim(std::move(tasks), 1);
    EXPECT_THROW(sim.Validate(), std::invalid_argument);
  }
  {
    // Rank without group.
    Task a = MakeTask(1.0, 0);
    a.gate_rank = 0;
    std::vector<Task> tasks{a};
    TaskGraphSim sim(std::move(tasks), 1);
    EXPECT_THROW(sim.Validate(), std::invalid_argument);
  }
}

TEST(Validate, AcceptsWellFormedGraph) {
  Task a = MakeTask(1.0, 0);
  a.gate_group = 0;
  a.gate_rank = 0;
  Task b = MakeTask(1.0, 0, {0});
  b.gate_group = 0;
  b.gate_rank = 1;
  std::vector<Task> tasks{a, b};
  TaskGraphSim sim(std::move(tasks), 1);
  EXPECT_NO_THROW(sim.Validate());
}

// Mid-run resource perturbations (DESIGN.md §8): the fault path only
// engages for a non-empty timeline, speed is sampled at task start, and
// a zero speed parks the resource until a recovery event.

TEST(SimFaults, NullAndEmptyTimelinesMatchBitForBit) {
  std::vector<Task> tasks{MakeTask(2.0, 0), MakeTask(1.0, 1, {0}),
                          MakeTask(3.0, 0, {0})};
  TaskGraphSim sim(std::move(tasks), 2);
  SimOptions options;
  const SimResult base = sim.Run(options, 7);
  const std::vector<ResourceFault> empty;
  options.faults = &empty;
  const SimResult faulted = sim.Run(options, 7);
  EXPECT_EQ(base.makespan, faulted.makespan);
  EXPECT_EQ(base.start, faulted.start);
  EXPECT_EQ(base.end, faulted.end);
  EXPECT_EQ(base.start_order, faulted.start_order);
}

TEST(SimFaults, SpeedIsSampledAtTaskStart) {
  // Resource 0 halves over [0, 3): the first task (nominal 2) starts at
  // 0 and takes 4 — the in-flight duration is NOT re-scaled when speed
  // recovers at 3. The successor starts at 4 back at full speed.
  std::vector<Task> tasks{MakeTask(2.0, 0), MakeTask(2.0, 0, {0})};
  TaskGraphSim sim(std::move(tasks), 1);
  const std::vector<ResourceFault> faults{{0.0, 0, 0.5}, {3.0, 0, 1.0}};
  SimOptions options;
  options.faults = &faults;
  const SimResult r = sim.Run(options, 1);
  EXPECT_DOUBLE_EQ(r.end[0], 4.0);
  EXPECT_DOUBLE_EQ(r.start[1], 4.0);
  EXPECT_DOUBLE_EQ(r.end[1], 6.0);
  EXPECT_DOUBLE_EQ(r.makespan, 6.0);
}

TEST(SimFaults, DownResourceDelaysStartsOthersUnaffected) {
  // Resource 0 is down over [0, 2): its task waits for the recovery
  // event; resource 1 is untouched and runs at t = 0.
  std::vector<Task> tasks{MakeTask(1.0, 0), MakeTask(1.0, 1)};
  TaskGraphSim sim(std::move(tasks), 2);
  const std::vector<ResourceFault> faults{{0.0, 0, 0.0}, {2.0, 0, 1.0}};
  SimOptions options;
  options.faults = &faults;
  const SimResult r = sim.Run(options, 1);
  EXPECT_DOUBLE_EQ(r.start[0], 2.0);
  EXPECT_DOUBLE_EQ(r.end[0], 3.0);
  EXPECT_DOUBLE_EQ(r.start[1], 0.0);
  EXPECT_DOUBLE_EQ(r.end[1], 1.0);
  EXPECT_DOUBLE_EQ(r.makespan, 3.0);
}

TEST(SimFaults, MidRunSlowdownHitsOnlyLaterStarts) {
  // The perturbation lands at t = 1.5, mid-flight for the first task:
  // it finishes on time at 2; the successor starts at 2 under 4x
  // slowdown (speed 0.25) and takes 4.
  std::vector<Task> tasks{MakeTask(2.0, 0), MakeTask(1.0, 0, {0})};
  TaskGraphSim sim(std::move(tasks), 1);
  const std::vector<ResourceFault> faults{{1.5, 0, 0.25}};
  SimOptions options;
  options.faults = &faults;
  const SimResult r = sim.Run(options, 1);
  EXPECT_DOUBLE_EQ(r.end[0], 2.0);
  EXPECT_DOUBLE_EQ(r.start[1], 2.0);
  EXPECT_DOUBLE_EQ(r.end[1], 6.0);
}

}  // namespace
}  // namespace tictac::sim
