// Differential tests: IncrementalProperties against the full Algorithm-1
// recompute, and the incremental TAC against the O(R²·V) reference
// implementation. The incremental path is only correct if it is
// *bit-identical* — M and P are float sums, and a last-ulp difference
// could flip the TacBefore comparator on a near-tie.
#include "core/incremental_properties.h"

#include <gtest/gtest.h>

#include "core/tac.h"
#include "models/builder.h"
#include "models/random_dag.h"
#include "models/zoo.h"

namespace tictac::core {
namespace {

using models::MakeRandomDag;
using models::RandomDagOptions;

// Bitwise property comparison (EXPECT_EQ on double is exact equality;
// kInfinity compares equal to itself).
void ExpectSameProps(const std::vector<RecvProperties>& full,
                     const std::vector<RecvProperties>& inc,
                     std::uint64_t seed, std::size_t step) {
  ASSERT_EQ(full.size(), inc.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(full[i].op, inc[i].op)
        << "recv " << i << " seed " << seed << " step " << step;
    EXPECT_EQ(full[i].M, inc[i].M)
        << "recv " << i << " seed " << seed << " step " << step;
    EXPECT_EQ(full[i].P, inc[i].P)
        << "recv " << i << " seed " << seed << " step " << step;
    EXPECT_EQ(full[i].Mplus, inc[i].Mplus)
        << "recv " << i << " seed " << seed << " step " << step;
  }
}

void ExpectSameSchedules(const Graph& g, const Schedule& a,
                         const Schedule& b) {
  for (const OpId r : g.RecvOps()) {
    EXPECT_EQ(a.priority(r), b.priority(r)) << "recv op " << r;
  }
}

// Every step of a TAC run over random DAGs: the incremental state must
// match a from-scratch UpdateProperties on the same outstanding set.
TEST(IncrementalProperties, MatchesFullRecomputeStepByStepOnRandomDags) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    RandomDagOptions options;
    options.num_recvs = 3 + static_cast<int>(seed % 13);
    options.num_computes = 6 + static_cast<int>((seed * 7) % 25);
    options.num_layers = 1 + static_cast<int>(seed % 5);
    options.edge_probability = 0.1 + 0.05 * static_cast<double>(seed % 10);
    options.with_sends = seed % 2 == 0;  // sends depend on *every* recv
    const Graph g = MakeRandomDag(options, seed);
    const PropertyIndex index(g);
    const AnalyticalTimeOracle oracle{PlatformModel{}};

    IncrementalProperties state(index, oracle);
    std::vector<bool> outstanding(index.recvs().size(), true);
    for (std::size_t step = 0; step < index.recvs().size(); ++step) {
      const auto full = index.UpdateProperties(oracle, outstanding);
      ExpectSameProps(full, state.props(), seed, step);

      // Complete the recv TAC would pick, so the trajectory exercised is
      // exactly the scheduling trajectory.
      int best = -1;
      for (std::size_t i = 0; i < outstanding.size(); ++i) {
        if (!outstanding[i]) continue;
        if (best < 0 ||
            TacBefore(full[i], full[static_cast<std::size_t>(best)])) {
          best = static_cast<int>(i);
        }
      }
      ASSERT_GE(best, 0);
      outstanding[static_cast<std::size_t>(best)] = false;
      state.CompleteRecv(static_cast<std::size_t>(best));
    }
    EXPECT_EQ(state.remaining(), 0u);
  }
}

TEST(IncrementalProperties, TacSchedulesBitIdenticalOnRandomDags) {
  for (std::uint64_t seed = 100; seed < 150; ++seed) {
    RandomDagOptions options;
    options.num_recvs = 4 + static_cast<int>(seed % 17);
    options.num_computes = 8 + static_cast<int>(seed % 31);
    options.num_layers = 2 + static_cast<int>(seed % 4);
    options.with_sends = seed % 3 == 0;
    const Graph g = MakeRandomDag(options, seed);
    const PropertyIndex index(g);
    const AnalyticalTimeOracle oracle{PlatformModel{}};
    ExpectSameSchedules(g, Tac(index, oracle),
                        TacFullRecompute(index, oracle));
  }
}

// The structural oracle produces masses of exact ties, stressing the
// M+/op-id tie-break path rather than the float sums.
TEST(IncrementalProperties, TacSchedulesBitIdenticalUnderGeneralOracle) {
  for (std::uint64_t seed = 200; seed < 220; ++seed) {
    RandomDagOptions options;
    options.num_recvs = 5 + static_cast<int>(seed % 11);
    options.num_computes = 10 + static_cast<int>(seed % 21);
    const Graph g = MakeRandomDag(options, seed);
    const PropertyIndex index(g);
    const GeneralTimeOracle oracle;
    ExpectSameSchedules(g, Tac(index, oracle),
                        TacFullRecompute(index, oracle));
  }
}

// Graph::AddEdge permits edges into a recv, giving it a recv ancestor —
// outside the invariant the incremental state assumes (a recv's M would
// shrink as ancestors complete). Tac() must detect this and stay
// bit-identical by routing through the full recompute.
TEST(IncrementalProperties, RecvWithRecvAncestorFallsBackToReference) {
  Graph g;
  const OpId r0 = g.AddRecv("r0", 100);
  const OpId c0 = g.AddCompute("c0", 1.0);
  const OpId r1 = g.AddRecv("r1", 200);  // depends on r0 through c0
  const OpId c1 = g.AddCompute("c1", 2.0);
  g.AddEdge(r0, c0);
  g.AddEdge(c0, r1);
  g.AddEdge(r1, c1);
  const PropertyIndex index(g);
  EXPECT_FALSE(index.recvs_are_roots());
  const AnalyticalTimeOracle oracle{PlatformModel{}};
  ExpectSameSchedules(g, Tac(index, oracle), TacFullRecompute(index, oracle));
}

TEST(IncrementalProperties, RootRecvsReportedAsRoots) {
  const Graph g = MakeRandomDag({}, 3);
  EXPECT_TRUE(PropertyIndex(g).recvs_are_roots());
}

TEST(IncrementalProperties, TacSchedulesBitIdenticalOnZooModels) {
  const AnalyticalTimeOracle oracle{PlatformModel{}};
  for (const auto& info : models::ModelZoo()) {
    for (const bool training : {false, true}) {
      const Graph g =
          models::BuildWorkerGraph(info, {.training = training});
      const PropertyIndex index(g);
      ExpectSameSchedules(g, Tac(index, oracle),
                          TacFullRecompute(index, oracle));
    }
  }
}

}  // namespace
}  // namespace tictac::core
