#include "runtime/sharding.h"

#include <gtest/gtest.h>

#include <numeric>

#include "models/zoo.h"

namespace tictac::runtime {
namespace {

TEST(Sharding, SinglePsGetsEverything) {
  const std::vector<std::int64_t> bytes{10, 20, 30};
  const auto assignment = ShardParams(bytes, 1);
  for (int ps : assignment) EXPECT_EQ(ps, 0);
}

TEST(Sharding, AssignmentsInRange) {
  const std::vector<std::int64_t> bytes{5, 1, 9, 3, 7, 2};
  const auto assignment = ShardParams(bytes, 3);
  ASSERT_EQ(assignment.size(), bytes.size());
  for (int ps : assignment) {
    EXPECT_GE(ps, 0);
    EXPECT_LT(ps, 3);
  }
}

TEST(Sharding, LoadsBalancedWithinLargestParam) {
  // Greedy largest-first guarantees max-min spread <= max param size.
  for (const auto& info : models::ModelZoo()) {
    const auto bytes = models::ParamSizes(info);
    for (int ps : {2, 4}) {
      const auto assignment = ShardParams(bytes, ps);
      const auto loads = ShardLoads(bytes, assignment, ps);
      const auto max_param = *std::max_element(bytes.begin(), bytes.end());
      const auto max_load = *std::max_element(loads.begin(), loads.end());
      const auto min_load = *std::min_element(loads.begin(), loads.end());
      EXPECT_LE(max_load - min_load, max_param)
          << info.name << " ps=" << ps;
      EXPECT_EQ(std::accumulate(loads.begin(), loads.end(), std::int64_t{0}),
                std::accumulate(bytes.begin(), bytes.end(), std::int64_t{0}));
    }
  }
}

TEST(Sharding, EveryPsUsedWhenEnoughParams) {
  const std::vector<std::int64_t> bytes(16, 100);
  const auto assignment = ShardParams(bytes, 4);
  std::vector<int> counts(4, 0);
  for (int ps : assignment) counts[static_cast<std::size_t>(ps)]++;
  for (int c : counts) EXPECT_EQ(c, 4);
}

TEST(Sharding, Deterministic) {
  const auto bytes = models::ParamSizes(models::FindModel("Inception v3"));
  EXPECT_EQ(ShardParams(bytes, 4), ShardParams(bytes, 4));
}

}  // namespace
}  // namespace tictac::runtime
