#include "core/tic.h"

#include <gtest/gtest.h>

#include "models/builder.h"
#include "models/zoo.h"

namespace tictac::core {
namespace {

TEST(Tic, Fig1aBothRecvsTie) {
  // Both recvs of Figure 1a share the single multi-recv consumer op2, so
  // under the general oracle their M+ ties and TIC may not distinguish
  // them (the relative order is genuinely insignificant for TIC).
  Graph g;
  const OpId r1 = g.AddRecv("recv1", 0);
  const OpId r2 = g.AddRecv("recv2", 0);
  const OpId o1 = g.AddCompute("op1", 1);
  const OpId o2 = g.AddCompute("op2", 1);
  g.AddEdge(r1, o1);
  g.AddEdge(o1, o2);
  g.AddEdge(r2, o2);
  const Schedule s = Tic(g);
  EXPECT_EQ(s.priority(r1), s.priority(r2));
  EXPECT_TRUE(s.CoversAllRecvs(g));
  EXPECT_FALSE(s.HasPriority(o1));  // computes stay unprioritized
}

TEST(Tic, ChainModelFollowsLayerOrder) {
  // recv_k feeds layer k of a chain; the k-th layer's compute depends
  // transitively on recvs 0..k, so TIC must order transfers by layer.
  Graph g;
  std::vector<OpId> recvs;
  OpId prev = kInvalidOp;
  for (int k = 0; k < 6; ++k) {
    const OpId r = g.AddRecv("r" + std::to_string(k), 0);
    const OpId c = g.AddCompute("c" + std::to_string(k), 1);
    g.AddEdge(r, c);
    if (prev != kInvalidOp) g.AddEdge(prev, c);
    prev = c;
    recvs.push_back(r);
  }
  const Schedule s = Tic(g);
  // Layers 0 and 1 tie (both are needed by the first multi-recv compute,
  // c1); from there on the order is strictly by layer.
  EXPECT_EQ(s.priority(recvs[0]), s.priority(recvs[1]));
  for (std::size_t k = 2; k < recvs.size(); ++k) {
    EXPECT_LT(s.priority(recvs[k - 1]), s.priority(recvs[k]))
        << "layer " << k;
  }
}

TEST(Tic, InfiniteMplusRanksLast) {
  // recvX's only consumer depends on recvX alone, so no multi-recv op
  // tightens its M+; it must rank after recvs with finite M+.
  Graph g;
  const OpId rx = g.AddRecv("rx", 0);
  const OpId ry = g.AddRecv("ry", 0);
  const OpId rz = g.AddRecv("rz", 0);
  const OpId lone = g.AddCompute("lone", 1);
  const OpId joint = g.AddCompute("joint", 1);
  g.AddEdge(rx, lone);
  g.AddEdge(ry, joint);
  g.AddEdge(rz, joint);
  const Schedule s = Tic(g);
  EXPECT_EQ(s.priority(ry), s.priority(rz));
  EXPECT_GT(s.priority(rx), s.priority(ry));
}

TEST(Tic, AllInfiniteSharesOneRank) {
  Graph g;
  const OpId ra = g.AddRecv("ra", 0);
  const OpId rb = g.AddRecv("rb", 0);
  const OpId ca = g.AddCompute("ca", 1);
  const OpId cb = g.AddCompute("cb", 1);
  g.AddEdge(ra, ca);
  g.AddEdge(rb, cb);
  const Schedule s = Tic(g);
  EXPECT_EQ(s.priority(ra), s.priority(rb));
}

TEST(Tic, RankCompressionIsDense) {
  // Three distinct finite M+ levels -> priorities {0, 1, 2}.
  Graph g;
  const OpId a = g.AddRecv("A", 0);
  const OpId b = g.AddRecv("B", 0);
  const OpId c = g.AddRecv("C", 0);
  const OpId d = g.AddRecv("D", 0);
  const OpId opX = g.AddCompute("opX", 1);
  const OpId opY = g.AddCompute("opY", 1);
  const OpId opZ = g.AddCompute("opZ", 1);
  g.AddEdge(a, opX);
  g.AddEdge(b, opX);            // M+(A) = M+(B) = 2
  g.AddEdge(a, opY);
  g.AddEdge(b, opY);
  g.AddEdge(c, opY);            // M+(C) = 3
  g.AddEdge(a, opZ);
  g.AddEdge(b, opZ);
  g.AddEdge(c, opZ);
  g.AddEdge(d, opZ);            // M+(D) = 4
  const Schedule s = Tic(g);
  EXPECT_EQ(s.priority(a), 0);
  EXPECT_EQ(s.priority(b), 0);
  EXPECT_EQ(s.priority(c), 1);
  EXPECT_EQ(s.priority(d), 2);
}

TEST(Tic, DeterministicAcrossCalls) {
  const auto& info = models::FindModel("Inception v1");
  const Graph g = models::BuildWorkerGraph(info, {.training = true});
  const Schedule a = Tic(g);
  const Schedule b = Tic(g);
  for (OpId r : g.RecvOps()) EXPECT_EQ(a.priority(r), b.priority(r));
}

TEST(Tic, CoversAllRecvsOnEveryModel) {
  for (const auto& info : models::ModelZoo()) {
    for (bool training : {false, true}) {
      const Graph g =
          models::BuildWorkerGraph(info, {.training = training});
      const Schedule s = Tic(g);
      EXPECT_TRUE(s.CoversAllRecvs(g)) << info.name;
    }
  }
}

}  // namespace
}  // namespace tictac::core
