#include "core/policy_registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>

#include "core/tac.h"
#include "core/tic.h"
#include "models/builder.h"
#include "models/zoo.h"

namespace tictac::core {
namespace {

// Small model-zoo graph shared by the parameterized tests.
const Graph& TestGraph() {
  static const Graph* graph = new Graph(models::BuildWorkerGraph(
      models::FindModel("AlexNet v2"), {.training = false}));
  return *graph;
}

const PropertyIndex& TestIndex() {
  static const PropertyIndex* index = new PropertyIndex(TestGraph());
  return *index;
}

TEST(PolicyRegistry, ListsBuiltinsWithBaselineFirst) {
  const auto names = PolicyRegistry::Global().List();
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names.front(), "baseline");
  for (const char* expected : {"baseline", "tic", "tac", "random",
                               "smallest-first", "largest-first", "reverse"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
    EXPECT_TRUE(PolicyRegistry::Global().Contains(expected)) << expected;
  }
}

TEST(PolicyRegistry, UnknownNameReportsAvailablePolicies) {
  try {
    PolicyRegistry::Global().Create("no-such-policy");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("no-such-policy"), std::string::npos) << message;
    for (const auto& name : PolicyRegistry::Global().List()) {
      EXPECT_NE(message.find(name), std::string::npos) << message;
    }
  }
}

TEST(PolicyRegistry, RejectsBadRegistrations) {
  PolicyRegistry registry;
  registry.Register("ok", [](const std::string&) {
    return std::make_unique<TicPolicy>();
  });
  EXPECT_THROW(registry.Register("ok", [](const std::string&) {
    return std::make_unique<TicPolicy>();
  }),
               std::invalid_argument);
  EXPECT_THROW(registry.Register("", PolicyRegistry::Factory()),
               std::invalid_argument);
  EXPECT_THROW(registry.Register("with:colon", [](const std::string&) {
    return std::make_unique<TicPolicy>();
  }),
               std::invalid_argument);
  EXPECT_THROW(registry.Register("null", PolicyRegistry::Factory()),
               std::invalid_argument);
}

TEST(PolicyRegistry, RegisteredPolicyIsCreatable) {
  PolicyRegistry registry;
  registry.Register("mine", [](const std::string&) {
    return std::make_unique<SmallestFirstPolicy>();
  });
  EXPECT_TRUE(registry.Contains("mine"));
  const auto policy = registry.Create("mine");
  EXPECT_EQ(policy->name(), "smallest-first");
}

TEST(PolicyRegistry, NoArgPoliciesRejectArguments) {
  EXPECT_THROW(PolicyRegistry::Global().Create("tic:5"),
               std::invalid_argument);
  EXPECT_THROW(PolicyRegistry::Global().Create("baseline:x"),
               std::invalid_argument);
}

TEST(PolicyRegistry, RandomSeedArgumentIsHonored) {
  const auto& registry = PolicyRegistry::Global();
  const AnalyticalTimeOracle oracle{PlatformModel{}};
  const Schedule a = registry.Create("random:7")->Compute(TestIndex(), oracle);
  const Schedule b = registry.Create("random:7")->Compute(TestIndex(), oracle);
  EXPECT_EQ(a.RecvOrder(TestGraph()), b.RecvOrder(TestGraph()));
  EXPECT_EQ(registry.Create("random:7")->name(), "random:7");
  EXPECT_EQ(registry.Create("random")->name(),
            "random:" + std::to_string(FixedRandomOrderPolicy::kDefaultSeed));
  EXPECT_THROW(registry.Create("random:notanumber"), std::invalid_argument);
  // std::stoull alone would wrap "-1" to 2^64-1; the spec must reject it.
  EXPECT_THROW(registry.Create("random:-1"), std::invalid_argument);
  EXPECT_THROW(registry.Create("random: 7"), std::invalid_argument);
}

TEST(PolicyRegistry, ReverseCombinatorNestsAndInverts) {
  const auto& registry = PolicyRegistry::Global();
  const AnalyticalTimeOracle oracle{PlatformModel{}};
  const auto reverse_tac = registry.Create("reverse:tac");
  EXPECT_EQ(reverse_tac->name(), "reverse:tac");
  EXPECT_TRUE(reverse_tac->RequiresOracle());

  auto forward = Tac(TestIndex(), oracle).RecvOrder(TestGraph());
  auto backward = reverse_tac->Compute(TestIndex(), oracle)
                      .RecvOrder(TestGraph());
  std::reverse(backward.begin(), backward.end());
  EXPECT_EQ(forward, backward);

  // Default inner is TIC; double reversal restores the TIC order.
  EXPECT_EQ(registry.Create("reverse")->name(), "reverse:tic");
  const auto twice = registry.Create("reverse:reverse:tic");
  EXPECT_EQ(twice->Compute(TestIndex(), oracle).RecvOrder(TestGraph()),
            Tic(TestIndex()).RecvOrder(TestGraph()));
  EXPECT_FALSE(twice->RequiresOracle());
}

TEST(PolicyRegistry, AdapterSchedulesMatchFreeFunctions) {
  const AnalyticalTimeOracle oracle{PlatformModel{}};
  EXPECT_EQ(PolicyRegistry::Global()
                .Create("tic")
                ->Compute(TestIndex(), oracle)
                .RecvOrder(TestGraph()),
            Tic(TestIndex()).RecvOrder(TestGraph()));
  EXPECT_EQ(PolicyRegistry::Global()
                .Create("tac")
                ->Compute(TestIndex(), oracle)
                .RecvOrder(TestGraph()),
            Tac(TestIndex(), oracle).RecvOrder(TestGraph()));
}

class AllPoliciesTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AllPoliciesTest, CreatesComputesAndIsDeterministic) {
  const auto& registry = PolicyRegistry::Global();
  const std::string& name = GetParam();
  const AnalyticalTimeOracle oracle{PlatformModel{}};

  const auto policy = registry.Create(name);
  ASSERT_NE(policy, nullptr);
  EXPECT_FALSE(policy->name().empty());
  // name() is a canonical spec: creating from it reproduces the policy.
  const auto clone = registry.Create(policy->name());
  EXPECT_EQ(clone->name(), policy->name());
  EXPECT_EQ(clone->RequiresOracle(), policy->RequiresOracle());

  const Schedule first = policy->Compute(TestIndex(), oracle);
  const Schedule second = registry.Create(name)->Compute(TestIndex(), oracle);
  EXPECT_EQ(first.RecvOrder(TestGraph()), second.RecvOrder(TestGraph()));

  if (name == "baseline") {
    EXPECT_FALSE(first.CoversAllRecvs(TestGraph()));
    EXPECT_EQ(first.size(), 0u);
  } else {
    EXPECT_TRUE(first.CoversAllRecvs(TestGraph())) << name;
    EXPECT_EQ(first.size(), TestGraph().size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, AllPoliciesTest,
    ::testing::ValuesIn(PolicyRegistry::Global().List()),
    [](const auto& param) {
      std::string name = param.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace tictac::core
