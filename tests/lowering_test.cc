#include "runtime/lowering.h"

#include <gtest/gtest.h>

#include "core/tic.h"
#include "models/builder.h"
#include "models/zoo.h"
#include "runtime/sharding.h"

namespace tictac::runtime {
namespace {

struct Fixture {
  explicit Fixture(const char* name = "Inception v1", bool training = true,
                   int workers = 4, int ps = 2)
      : info(models::FindModel(name)),
        config(EnvG(workers, ps, training)),
        graph(models::BuildWorkerGraph(info, {.training = training})),
        ps_of(ShardParams(models::ParamSizes(info), ps)) {}

  const models::ModelInfo& info;
  ClusterConfig config;
  core::Graph graph;
  std::vector<int> ps_of;
};

TEST(Lowering, ResourceLayoutAndCounts) {
  Fixture f;
  const Lowering low =
      LowerCluster(f.graph, core::Schedule(), f.ps_of, f.config);
  const int W = 4;
  const int S = 2;
  EXPECT_EQ(low.num_resources, W + 2 * W * S + S);
  EXPECT_EQ(low.num_workers, W);

  // Per worker: one task per worker-graph op.
  for (int w = 0; w < W; ++w) {
    EXPECT_EQ(low.worker_tasks[static_cast<std::size_t>(w)].size(),
              f.graph.size());
    EXPECT_EQ(low.worker_recv_tasks[static_cast<std::size_t>(w)].size(),
              static_cast<std::size_t>(f.info.num_params));
  }
  // Training PS tasks: P reads + P aggregates + P updates.
  const std::size_t expected =
      static_cast<std::size_t>(f.info.num_params) * 3 +
      f.graph.size() * static_cast<std::size_t>(W);
  EXPECT_EQ(low.tasks.size(), expected);
}

TEST(Lowering, InferenceHasNoAggregateOrUpdate) {
  Fixture f("Inception v1", /*training=*/false);
  const Lowering low =
      LowerCluster(f.graph, core::Schedule(), f.ps_of, f.config);
  for (const sim::Task& t : low.tasks) {
    EXPECT_NE(t.kind, core::OpKind::kAggregate);
    EXPECT_NE(t.kind, core::OpKind::kUpdate);
  }
  const std::size_t expected = static_cast<std::size_t>(f.info.num_params) +
                               f.graph.size() * 4u;
  EXPECT_EQ(low.tasks.size(), expected);
}

TEST(Lowering, BaselineHasNoGatesOrPriorities) {
  Fixture f;
  const Lowering low =
      LowerCluster(f.graph, core::Schedule(), f.ps_of, f.config);
  for (const sim::Task& t : low.tasks) {
    EXPECT_EQ(t.gate_group, -1);
    EXPECT_EQ(t.priority, sim::kNoPriority);
  }
}

TEST(Lowering, ScheduledRecvsCarryGatesAndPriorities) {
  Fixture f;
  const core::Schedule schedule = core::Tic(f.graph);
  const Lowering low = LowerCluster(f.graph, schedule, f.ps_of, f.config);
  for (int w = 0; w < 4; ++w) {
    std::vector<int> ranks;
    for (sim::TaskId t : low.worker_recv_tasks[static_cast<std::size_t>(w)]) {
      const sim::Task& task = low.tasks[static_cast<std::size_t>(t)];
      EXPECT_EQ(task.gate_group, w);
      EXPECT_NE(task.priority, sim::kNoPriority);
      ranks.push_back(task.gate_rank);
    }
    std::sort(ranks.begin(), ranks.end());
    for (std::size_t i = 0; i < ranks.size(); ++i) {
      EXPECT_EQ(ranks[i], static_cast<int>(i));
    }
  }
  // Non-recv tasks are never gated.
  for (const sim::Task& t : low.tasks) {
    if (t.kind != core::OpKind::kRecv) {
      EXPECT_EQ(t.gate_group, -1);
    }
  }
}

TEST(Lowering, TransfersLandOnCorrectChannels) {
  Fixture f;
  const Lowering low =
      LowerCluster(f.graph, core::Schedule(), f.ps_of, f.config);
  const int W = 4;
  const int S = 2;
  for (const sim::Task& t : low.tasks) {
    if (t.kind == core::OpKind::kRecv) {
      const int param = f.graph.op(t.op).param;
      const int expected = W + t.worker * S + f.ps_of[static_cast<std::size_t>(param)];
      EXPECT_EQ(t.resource, expected);
    } else if (t.kind == core::OpKind::kSend) {
      const int param = f.graph.op(t.op).param;
      const int expected =
          W + W * S + t.worker * S + f.ps_of[static_cast<std::size_t>(param)];
      EXPECT_EQ(t.resource, expected);
    } else if (t.kind == core::OpKind::kCompute) {
      EXPECT_EQ(t.resource, t.worker);
    } else {
      EXPECT_GE(t.resource, W + 2 * W * S);  // PS cpu
    }
  }
}

TEST(Lowering, TransferDurationsUseSharedNicBandwidth) {
  Fixture f;
  const Lowering low =
      LowerCluster(f.graph, core::Schedule(), f.ps_of, f.config);
  const auto& hw = f.config.platform;
  for (const sim::Task& t : low.tasks) {
    if (t.kind != core::OpKind::kRecv) continue;
    const auto bytes = f.graph.op(t.op).bytes;
    const double expected =
        hw.latency_s + static_cast<double>(bytes) * 4 / hw.bandwidth_bps;
    EXPECT_NEAR(t.duration, expected, 1e-12);
  }
}

TEST(Lowering, ValidatesCleanly) {
  for (const bool training : {false, true}) {
    Fixture f("ResNet-50 v2", training);
    for (const auto& method : {core::Schedule(), core::Tic(f.graph)}) {
      const Lowering low = LowerCluster(f.graph, method, f.ps_of, f.config);
      sim::TaskGraphSim sim = low.BuildSim();
      EXPECT_NO_THROW(sim.Validate());
    }
  }
}

TEST(Lowering, AggregateWaitsForAllWorkers) {
  Fixture f("AlexNet v2", /*training=*/true, /*workers=*/3, /*ps=*/1);
  const Lowering low =
      LowerCluster(f.graph, core::Schedule(), f.ps_of, f.config);
  int aggregates = 0;
  for (const sim::Task& t : low.tasks) {
    if (t.kind == core::OpKind::kAggregate) {
      ++aggregates;
      EXPECT_EQ(t.preds.size(), 3u);  // one gradient push per worker
    }
  }
  EXPECT_EQ(aggregates, f.info.num_params);
}

TEST(Lowering, RejectsBadInputs) {
  Fixture f;
  EXPECT_THROW(LowerCluster(f.graph, core::Schedule(), f.ps_of,
                            EnvG(0, 1, true)),
               std::invalid_argument);
  // Param index out of range in sharding map.
  std::vector<int> short_map(3, 0);
  EXPECT_THROW(
      LowerCluster(f.graph, core::Schedule(), short_map, f.config),
      std::invalid_argument);
}

}  // namespace
}  // namespace tictac::runtime
