#include "core/schedule.h"

#include <gtest/gtest.h>

namespace tictac::core {
namespace {

Graph ThreeRecvGraph() {
  Graph g;
  g.AddRecv("r0", 0);
  g.AddRecv("r1", 0);
  g.AddRecv("r2", 0);
  g.AddCompute("c", 1);
  g.AddEdge(0, 3);
  g.AddEdge(1, 3);
  g.AddEdge(2, 3);
  return g;
}

TEST(Schedule, DefaultHasNoPriorities) {
  const Graph g = ThreeRecvGraph();
  Schedule s(g.size());
  for (const Op& op : g.ops()) EXPECT_FALSE(s.HasPriority(op.id));
  EXPECT_FALSE(s.CoversAllRecvs(g));
}

TEST(Schedule, RecvOrderSortsByPriorityThenId) {
  const Graph g = ThreeRecvGraph();
  Schedule s(g.size());
  s.SetPriority(0, 5);
  s.SetPriority(1, 5);
  s.SetPriority(2, 1);
  const auto order = s.RecvOrder(g);
  EXPECT_EQ(order, (std::vector<OpId>{2, 0, 1}));
}

TEST(Schedule, UnprioritizedRecvsSortLast) {
  const Graph g = ThreeRecvGraph();
  Schedule s(g.size());
  s.SetPriority(2, 0);
  const auto order = s.RecvOrder(g);
  EXPECT_EQ(order.front(), 2);
}

TEST(Schedule, NormalizedRanksAreDense) {
  const Graph g = ThreeRecvGraph();
  Schedule s(g.size());
  s.SetPriority(0, 100);
  s.SetPriority(1, 7);
  s.SetPriority(2, 100);
  const auto rank = s.NormalizedRecvRank(g);
  ASSERT_EQ(rank.size(), 3u);
  EXPECT_EQ(rank.at(1), 0);
  EXPECT_EQ(rank.at(0), 1);  // tie at 100 broken by id
  EXPECT_EQ(rank.at(2), 2);
}

TEST(Schedule, CoversAllRecvsRequiresEveryRecv) {
  const Graph g = ThreeRecvGraph();
  Schedule s(g.size());
  s.SetPriority(0, 0);
  s.SetPriority(1, 1);
  EXPECT_FALSE(s.CoversAllRecvs(g));
  s.SetPriority(2, 2);
  EXPECT_TRUE(s.CoversAllRecvs(g));
}

TEST(Schedule, DefaultConstructedReadsAreSafe) {
  // A default-constructed Schedule holds no priority storage; reads for
  // any op must report "no priority" instead of touching memory out of
  // bounds (the baseline policy hands such a Schedule to every layer).
  const Graph g = ThreeRecvGraph();
  const Schedule s;
  EXPECT_EQ(s.size(), 0u);
  for (const Op& op : g.ops()) {
    EXPECT_EQ(s.priority(op.id), Schedule::kNoPriority);
    EXPECT_FALSE(s.HasPriority(op.id));
  }
  EXPECT_FALSE(s.CoversAllRecvs(g));
  EXPECT_EQ(s.RecvOrder(g), g.RecvOps());  // priority ties fall back to id
  EXPECT_EQ(s.NormalizedRecvRank(g).size(), g.RecvOps().size());
}

TEST(Schedule, ReadsBeyondConstructedSizeAreSafe) {
  const Graph g = ThreeRecvGraph();
  Schedule s(2);  // smaller than the graph: ops 2 and 3 are out of range
  EXPECT_EQ(s.priority(3), Schedule::kNoPriority);
  EXPECT_FALSE(s.HasPriority(2));
  EXPECT_FALSE(s.CoversAllRecvs(g));
}

TEST(Schedule, WritesBeyondConstructedSizeThrow) {
  Schedule s(2);
  EXPECT_THROW(s.SetPriority(2, 0), std::out_of_range);
  Schedule empty;
  EXPECT_THROW(empty.SetPriority(0, 0), std::out_of_range);
}

TEST(Schedule, ComputePriorityDoesNotAffectRecvCoverage) {
  const Graph g = ThreeRecvGraph();
  Schedule s(g.size());
  s.SetPriority(3, 0);  // the compute op
  EXPECT_FALSE(s.CoversAllRecvs(g));
}

}  // namespace
}  // namespace tictac::core
