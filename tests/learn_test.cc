#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "learn/data.h"
#include "learn/matrix.h"
#include "learn/mlp.h"
#include "learn/ps_trainer.h"
#include "util/rng.h"

namespace tictac::learn {
namespace {

TEST(Matrix, MatMulKnownValues) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  double va[] = {1, 2, 3, 4, 5, 6};
  double vb[] = {7, 8, 9, 10, 11, 12};
  std::copy(std::begin(va), std::end(va), a.data().begin());
  std::copy(std::begin(vb), std::end(vb), b.data().begin());
  const Matrix c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 154.0);
}

TEST(Matrix, TransposedMultipliesAgreeWithExplicit) {
  util::Rng rng(5);
  Matrix a(4, 3);
  Matrix b(4, 3);
  a.RandomNormal(rng, 1.0);
  b.RandomNormal(rng, 1.0);
  // a^T * b == MatMulTransposeA(a, b)
  const Matrix ta = MatMulTransposeA(a, b);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      double expected = 0.0;
      for (std::size_t k = 0; k < 4; ++k) expected += a.at(k, i) * b.at(k, j);
      EXPECT_NEAR(ta.at(i, j), expected, 1e-12);
    }
  }
  // a * b^T == MatMulTransposeB(a, b)
  const Matrix tb = MatMulTransposeB(a, b);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      double expected = 0.0;
      for (std::size_t k = 0; k < 3; ++k) expected += a.at(i, k) * b.at(j, k);
      EXPECT_NEAR(tb.at(i, j), expected, 1e-12);
    }
  }
}

TEST(Matrix, ReluAndBias) {
  Matrix m(1, 4);
  double v[] = {-1.0, 0.0, 2.0, -3.0};
  std::copy(std::begin(v), std::end(v), m.data().begin());
  Matrix bias(1, 4);
  bias.at(0, 0) = 0.5;
  AddBiasRow(m, bias);
  EXPECT_DOUBLE_EQ(m.at(0, 0), -0.5);
  ReluInPlace(m);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 2.0);

  Matrix grad(1, 4);
  std::fill(grad.data().begin(), grad.data().end(), 1.0);
  ReluBackward(m, grad);
  EXPECT_DOUBLE_EQ(grad.at(0, 0), 0.0);  // masked where activation <= 0
  EXPECT_DOUBLE_EQ(grad.at(0, 2), 1.0);
}

TEST(Matrix, AxpyAccumulates) {
  Matrix a(2, 2);
  Matrix b(2, 2);
  std::fill(b.data().begin(), b.data().end(), 2.0);
  a.Axpy(-0.5, b);
  for (double x : a.data()) EXPECT_DOUBLE_EQ(x, -1.0);
}

TEST(Mlp, GradientMatchesFiniteDifferences) {
  // Property check of the whole backward pass.
  const MlpShape shape{.inputs = 4, .hidden1 = 6, .hidden2 = 5, .classes = 3};
  Mlp mlp(shape, 123);
  const Dataset data = MakeGaussianMixture(8, 4, 3, 99);

  Gradients grads = mlp.ZeroGradients();
  mlp.Loss(data.features, data.labels, &grads);

  const double eps = 1e-6;
  util::Rng rng(7);
  for (std::size_t p = 0; p < mlp.num_params(); ++p) {
    // Spot-check a few entries per parameter.
    for (int probe = 0; probe < 3; ++probe) {
      const std::size_t idx = rng.Index(mlp.param(p).size());
      Mlp plus = mlp;
      plus.mutable_param(p).data()[idx] += eps;
      Mlp minus = mlp;
      minus.mutable_param(p).data()[idx] -= eps;
      const double numeric =
          (plus.Loss(data.features, data.labels, nullptr) -
           minus.Loss(data.features, data.labels, nullptr)) /
          (2 * eps);
      EXPECT_NEAR(grads[p].data()[idx], numeric, 1e-5)
          << "param " << p << " idx " << idx;
    }
  }
}

TEST(Mlp, LossDecreasesUnderSgd) {
  const Dataset data = MakeGaussianMixture(128, 8, 3, 11);
  TrainConfig config;
  PsTrainer trainer(config, data);
  const TrainLog log = trainer.Train(120, {});
  ASSERT_EQ(log.loss.size(), 120u);
  const double early =
      std::accumulate(log.loss.begin(), log.loss.begin() + 10, 0.0) / 10;
  const double late =
      std::accumulate(log.loss.end() - 10, log.loss.end(), 0.0) / 10;
  EXPECT_LT(late, early * 0.5);
  EXPECT_GT(log.final_accuracy, 0.8);
}

TEST(PsTrainer, TransferOrderDoesNotChangeLoss) {
  // The Figure 8 invariant: scheduling only reorders transfers; the
  // arithmetic is identical, so losses match bit-for-bit.
  const Dataset data = MakeGaussianMixture(96, 8, 3, 21);
  TrainConfig config;

  PsTrainer natural(config, data);
  const TrainLog log_natural = natural.Train(60, {});

  std::vector<int> reversed(6);
  std::iota(reversed.begin(), reversed.end(), 0);
  std::reverse(reversed.begin(), reversed.end());
  PsTrainer scheduled(config, data);
  const TrainLog log_scheduled = scheduled.Train(60, reversed);

  ASSERT_EQ(log_natural.loss.size(), log_scheduled.loss.size());
  for (std::size_t i = 0; i < log_natural.loss.size(); ++i) {
    EXPECT_EQ(log_natural.loss[i], log_scheduled.loss[i]) << "iter " << i;
  }
  EXPECT_EQ(log_natural.final_accuracy, log_scheduled.final_accuracy);
}

TEST(PsTrainer, ShuffledOrdersAllMatch) {
  const Dataset data = MakeGaussianMixture(64, 8, 3, 33);
  TrainConfig config;
  PsTrainer reference(config, data);
  const TrainLog ref = reference.Train(20, {});

  util::Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<int> order(6);
    std::iota(order.begin(), order.end(), 0);
    rng.Shuffle(order);
    PsTrainer t(config, data);
    const TrainLog log = t.Train(20, order);
    EXPECT_EQ(log.loss.back(), ref.loss.back()) << "trial " << trial;
  }
}

TEST(PsTrainer, DataSeedIsDeterministicAndChangesMinibatchOrder) {
  const Dataset data = MakeGaussianMixture(64, 8, 3, 33);
  TrainConfig seeded;
  seeded.data_seed = 17;

  // The seed pins both weight init (model_seed) and minibatch order
  // (data_seed): two trainers with the same config match bit for bit.
  PsTrainer a(seeded, data);
  PsTrainer b(seeded, data);
  const TrainLog log_a = a.Train(20, {});
  const TrainLog log_b = b.Train(20, {});
  ASSERT_EQ(log_a.loss.size(), log_b.loss.size());
  for (std::size_t i = 0; i < log_a.loss.size(); ++i) {
    EXPECT_EQ(log_a.loss[i], log_b.loss[i]) << "iter " << i;
  }
  EXPECT_EQ(log_a.final_accuracy, log_b.final_accuracy);

  // A different data_seed visits examples in a different order, so the
  // loss trajectory diverges; data_seed = 0 keeps the legacy sequential
  // sweep.
  TrainConfig reseeded = seeded;
  reseeded.data_seed = 18;
  PsTrainer c(reseeded, data);
  const TrainLog log_c = c.Train(20, {});
  EXPECT_NE(log_a.loss.back(), log_c.loss.back());

  TrainConfig sequential;
  PsTrainer d(sequential, data);
  PsTrainer reference(TrainConfig{}, data);
  EXPECT_EQ(d.Train(20, {}).loss.back(),
            reference.Train(20, {}).loss.back());
}

TEST(Dataset, ShuffledIsASeededPermutation) {
  const Dataset data = MakeGaussianMixture(50, 6, 4, 77);
  const Dataset shuffled = data.Shuffled(9);
  ASSERT_EQ(shuffled.size(), data.size());
  EXPECT_EQ(shuffled.features.data(), data.Shuffled(9).features.data());
  EXPECT_NE(shuffled.labels, data.labels);  // 50! leaves no fixed order
  // Same multiset of labels: it is a permutation, not a resample.
  std::vector<int> a = data.labels;
  std::vector<int> b = shuffled.labels;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(Dataset, DeterministicAndWellFormed) {
  const Dataset a = MakeGaussianMixture(50, 6, 4, 77);
  const Dataset b = MakeGaussianMixture(50, 6, 4, 77);
  EXPECT_EQ(a.features.data(), b.features.data());
  EXPECT_EQ(a.labels, b.labels);
  for (int label : a.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 4);
  }
}

TEST(Dataset, BatchWrapsAround) {
  const Dataset data = MakeGaussianMixture(10, 3, 2, 1);
  const Dataset batch = data.Batch(8, 5);
  ASSERT_EQ(batch.size(), 5u);
  // Entries 8, 9, 0, 1, 2.
  EXPECT_EQ(batch.labels[0], data.labels[8]);
  EXPECT_EQ(batch.labels[2], data.labels[0]);
  EXPECT_DOUBLE_EQ(batch.features.at(3, 0), data.features.at(1, 0));
}

TEST(Dataset, ClassesAreSeparable) {
  // Sanity: a trained model should beat chance by a wide margin, meaning
  // the mixture actually carries class signal.
  const Dataset data = MakeGaussianMixture(200, 8, 3, 5);
  TrainConfig config;
  PsTrainer trainer(config, data);
  const TrainLog log = trainer.Train(150, {});
  EXPECT_GT(log.final_accuracy, 0.75);
}

}  // namespace
}  // namespace tictac::learn
