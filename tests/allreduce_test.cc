#include "runtime/allreduce.h"

#include <gtest/gtest.h>

#include "models/builder.h"
#include "models/zoo.h"

namespace tictac::runtime {
namespace {

struct Fixture {
  explicit Fixture(int workers = 4)
      : info(models::FindModel("Inception v1")),
        config(EnvG(workers, /*num_ps=*/1, /*training=*/true)),
        graph(models::BuildWorkerGraph(info, {.training = true})) {}

  const models::ModelInfo& info;
  ClusterConfig config;
  core::Graph graph;
};

TEST(AllReduce, ResourceAndTaskCounts) {
  Fixture f(4);
  const Lowering low = LowerAllReduce(f.graph, f.config);
  EXPECT_EQ(low.num_resources, 8);  // 4 workers + 4 ring links
  // Worker tasks: one per op per worker; ring: P * 2(W-1) rounds * W.
  const std::size_t ring_tasks =
      static_cast<std::size_t>(f.info.num_params) * 2 * 3 * 4;
  EXPECT_EQ(low.tasks.size(), f.graph.size() * 4 + ring_tasks);
}

TEST(AllReduce, ValidatesAndRuns) {
  Fixture f;
  const Lowering low = LowerAllReduce(f.graph, f.config);
  sim::TaskGraphSim sim = low.BuildSim();
  EXPECT_NO_THROW(sim.Validate());
  const sim::SimResult result = sim.Run(f.config.sim, 1);
  EXPECT_GT(result.makespan, 0.0);
}

TEST(AllReduce, LocalWeightReadsAreFree) {
  Fixture f;
  const Lowering low = LowerAllReduce(f.graph, f.config);
  for (const sim::Task& t : low.tasks) {
    if (t.kind == core::OpKind::kRecv) {
      EXPECT_EQ(t.duration, 0.0);
      EXPECT_EQ(t.resource, t.worker);  // on the worker, not a channel
    }
  }
}

TEST(AllReduce, ComputeNeverWaitsOnNetworkAtIterationStart) {
  // Without parameter pulls, the forward pass starts immediately: the
  // first compute op must start at t = 0.
  Fixture f;
  const Lowering low = LowerAllReduce(f.graph, f.config);
  sim::TaskGraphSim sim = low.BuildSim();
  sim::SimOptions options;  // no jitter
  const sim::SimResult result = sim.Run(options, 1);
  double first_compute_start = 1e100;
  for (sim::TaskId t : low.worker_tasks[0]) {
    const auto ti = static_cast<std::size_t>(t);
    if (low.tasks[ti].kind == core::OpKind::kCompute) {
      first_compute_start = std::min(first_compute_start, result.start[ti]);
    }
  }
  EXPECT_EQ(first_compute_start, 0.0);
}

TEST(AllReduce, RejectsInvalidConfigs) {
  Fixture f;
  EXPECT_THROW(LowerAllReduce(f.graph, EnvG(1, 1, true)),
               std::invalid_argument);
  EXPECT_THROW(LowerAllReduce(f.graph, EnvG(4, 1, false)),
               std::invalid_argument);
}

TEST(AllReduce, MoreWorkersShrinkPerLinkChunks) {
  // Ring all-reduce is bandwidth-optimal: per-link bytes ~ 2 * size, and
  // the chunk duration falls with W.
  Fixture f4(4);
  Fixture f8(8);
  const Lowering low4 = LowerAllReduce(f4.graph, f4.config);
  const Lowering low8 = LowerAllReduce(f8.graph, f8.config);
  double max_chunk4 = 0.0;
  double max_chunk8 = 0.0;
  for (const sim::Task& t : low4.tasks) {
    if (t.op == core::kInvalidOp) max_chunk4 = std::max(max_chunk4, t.duration);
  }
  for (const sim::Task& t : low8.tasks) {
    if (t.op == core::kInvalidOp) max_chunk8 = std::max(max_chunk8, t.duration);
  }
  EXPECT_LT(max_chunk8, max_chunk4);
}

}  // namespace
}  // namespace tictac::runtime
