#include "models/random_dag.h"

#include <gtest/gtest.h>

#include "core/properties.h"
#include "core/tac.h"
#include "core/tic.h"

namespace tictac::models {
namespace {

using core::Graph;
using core::OpId;
using core::OpKind;

class RandomDagSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomDagSweep, StructuralInvariants) {
  const std::uint64_t seed = GetParam();
  RandomDagOptions options;
  options.num_recvs = 5 + static_cast<int>(seed % 7);
  options.num_computes = 8 + static_cast<int>(seed % 13);
  options.num_layers = 2 + static_cast<int>(seed % 4);
  options.with_sends = (seed % 2) == 0;
  const Graph g = MakeRandomDag(options, seed);

  EXPECT_TRUE(g.IsAcyclic());
  const auto recvs = g.RecvOps();
  EXPECT_EQ(recvs.size(), static_cast<std::size_t>(options.num_recvs));
  for (OpId r : recvs) {
    EXPECT_TRUE(g.preds(r).empty());
    EXPECT_FALSE(g.succs(r).empty());
  }
  const auto sends = g.OpsOfKind(OpKind::kSend);
  EXPECT_EQ(sends.size(),
            options.with_sends ? recvs.size() : 0u);
  for (OpId s : sends) EXPECT_TRUE(g.succs(s).empty());

  // Common sink: every recv reaches every... at least, every recv's dep
  // set is contained in the final compute's dep set.
  core::PropertyIndex index(g);
  OpId sink = core::kInvalidOp;
  for (const core::Op& op : g.ops()) {
    if (op.kind == OpKind::kCompute && op.name == "sink") sink = op.id;
  }
  ASSERT_NE(sink, core::kInvalidOp);
  EXPECT_EQ(index.dep(sink).Count(), recvs.size());
}

TEST_P(RandomDagSweep, SchedulersProduceValidTotalOrders) {
  const Graph g = MakeRandomDag({}, GetParam());
  const core::Schedule tic = core::Tic(g);
  EXPECT_TRUE(tic.CoversAllRecvs(g));

  core::GeneralTimeOracle oracle;
  const core::Schedule tac = core::Tac(g, oracle);
  EXPECT_TRUE(tac.CoversAllRecvs(g));
  // TAC priorities form a dense permutation.
  std::vector<int> priorities;
  for (OpId r : g.RecvOps()) priorities.push_back(tac.priority(r));
  std::sort(priorities.begin(), priorities.end());
  for (std::size_t i = 0; i < priorities.size(); ++i) {
    EXPECT_EQ(priorities[i], static_cast<int>(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagSweep,
                         ::testing::Range<std::uint64_t>(0, 25));

TEST(RandomDag, DeterministicPerSeed) {
  const Graph a = MakeRandomDag({}, 99);
  const Graph b = MakeRandomDag({}, 99);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto id = static_cast<OpId>(i);
    EXPECT_EQ(a.op(id).bytes, b.op(id).bytes);
    EXPECT_EQ(a.preds(id), b.preds(id));
  }
}

TEST(RandomDag, DifferentSeedsDiffer) {
  const Graph a = MakeRandomDag({}, 1);
  const Graph b = MakeRandomDag({}, 2);
  bool differs = a.num_edges() != b.num_edges();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    const auto id = static_cast<OpId>(i);
    differs = a.op(id).bytes != b.op(id).bytes || a.preds(id) != b.preds(id);
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace tictac::models
