// Differential testing: the event-driven engine vs the naive reference
// executor. On deterministic inputs (unique priorities per resource, no
// gates, no jitter) both must agree exactly.
#include <gtest/gtest.h>

#include <numeric>

#include "sim/engine.h"
#include "sim/reference.h"
#include "util/rng.h"

namespace tictac::sim {
namespace {

std::vector<Task> RandomTaskGraph(std::uint64_t seed, int num_tasks,
                                  int num_resources) {
  util::Rng rng(seed);
  std::vector<Task> tasks(static_cast<std::size_t>(num_tasks));
  // Unique global priorities remove all tie-break freedom.
  std::vector<int> priorities(static_cast<std::size_t>(num_tasks));
  std::iota(priorities.begin(), priorities.end(), 0);
  rng.Shuffle(priorities);
  for (int t = 0; t < num_tasks; ++t) {
    Task& task = tasks[static_cast<std::size_t>(t)];
    task.duration = rng.Uniform(0.05, 2.0);
    task.resource = static_cast<int>(
        rng.Index(static_cast<std::size_t>(num_resources)));
    task.priority = priorities[static_cast<std::size_t>(t)];
    // Edges only from earlier tasks: acyclic by construction.
    const int preds = static_cast<int>(rng.Index(3));
    for (int p = 0; p < preds && t > 0; ++p) {
      task.preds.push_back(static_cast<TaskId>(
          rng.Index(static_cast<std::size_t>(t))));
    }
  }
  return tasks;
}

class DifferentialSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialSweep, EngineMatchesReferenceExactly) {
  const std::uint64_t seed = GetParam();
  const int num_resources = 2 + static_cast<int>(seed % 4);
  const int num_tasks = 20 + static_cast<int>(seed % 30);
  const std::vector<Task> tasks =
      RandomTaskGraph(seed, num_tasks, num_resources);

  TaskGraphSim engine(tasks, num_resources);
  engine.Validate();
  SimOptions options;  // no jitter, no reordering
  const SimResult a = engine.Run(options, /*seed=*/1);
  const SimResult b = ReferenceRun(tasks, num_resources);

  ASSERT_EQ(a.start.size(), b.start.size());
  EXPECT_NEAR(a.makespan, b.makespan, 1e-9) << "seed " << seed;
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    EXPECT_NEAR(a.start[t], b.start[t], 1e-9)
        << "task " << t << " seed " << seed;
    EXPECT_NEAR(a.end[t], b.end[t], 1e-9)
        << "task " << t << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSweep,
                         ::testing::Range<std::uint64_t>(0, 30));

TEST(ReferenceRun, HandlesUnprioritizedTasks) {
  std::vector<Task> tasks(2);
  tasks[0].duration = 1.0;
  tasks[0].resource = 0;
  tasks[0].priority = 5;
  tasks[1].duration = 1.0;
  tasks[1].resource = 0;  // no priority: must run after the numbered one
  const SimResult r = ReferenceRun(tasks, 1);
  EXPECT_LT(r.start[0], r.start[1]);
  EXPECT_DOUBLE_EQ(r.makespan, 2.0);
}

TEST(ReferenceRun, RespectsDependenciesAcrossResources) {
  std::vector<Task> tasks(3);
  tasks[0].duration = 1.0;
  tasks[0].resource = 0;
  tasks[1].duration = 2.0;
  tasks[1].resource = 1;
  tasks[1].preds = {0};
  tasks[2].duration = 0.5;
  tasks[2].resource = 0;
  tasks[2].preds = {1};
  const SimResult r = ReferenceRun(tasks, 2);
  EXPECT_DOUBLE_EQ(r.start[1], 1.0);
  EXPECT_DOUBLE_EQ(r.start[2], 3.0);
  EXPECT_DOUBLE_EQ(r.makespan, 3.5);
}

}  // namespace
}  // namespace tictac::sim
