#include "core/time_oracle.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tictac::core {
namespace {

Graph MixedGraph() {
  Graph g;
  g.AddRecv("r", 1000);     // 0
  g.AddCompute("c", 8.0);   // 1
  g.AddSend("s", 500);      // 2
  Op agg;
  agg.name = "agg";
  agg.kind = OpKind::kAggregate;
  g.AddOp(agg);             // 3
  return g;
}

TEST(GeneralTimeOracle, RecvIsOneEverythingElseZero) {
  const Graph g = MixedGraph();
  GeneralTimeOracle oracle;
  EXPECT_EQ(oracle.Time(g, 0), 1.0);
  EXPECT_EQ(oracle.Time(g, 1), 0.0);
  EXPECT_EQ(oracle.Time(g, 2), 0.0);
  EXPECT_EQ(oracle.Time(g, 3), 0.0);
  EXPECT_EQ(oracle.TotalTime(g), 1.0);
}

TEST(MapTimeOracle, LookupAndDefault) {
  const Graph g = MixedGraph();
  MapTimeOracle oracle({{0, 2.5}, {1, 0.5}}, /*default_time=*/9.0);
  EXPECT_EQ(oracle.Time(g, 0), 2.5);
  EXPECT_EQ(oracle.Time(g, 1), 0.5);
  EXPECT_EQ(oracle.Time(g, 2), 9.0);
  oracle.Set(2, 1.0);
  EXPECT_EQ(oracle.Time(g, 2), 1.0);
}

TEST(AnalyticalTimeOracle, PerKindCosts) {
  const Graph g = MixedGraph();
  PlatformModel hw;
  hw.compute_rate = 4.0;
  hw.bandwidth_bps = 1e6;
  hw.latency_s = 1e-3;
  hw.ps_op_time_s = 1e-5;
  AnalyticalTimeOracle oracle(hw);
  EXPECT_DOUBLE_EQ(oracle.Time(g, 0), 1e-3 + 1000 / 1e6);  // recv
  EXPECT_DOUBLE_EQ(oracle.Time(g, 1), 2.0);                // compute 8/4
  EXPECT_DOUBLE_EQ(oracle.Time(g, 2), 1e-3 + 500 / 1e6);   // send
  EXPECT_DOUBLE_EQ(oracle.Time(g, 3), 1e-5);               // ps op
}

TEST(AnalyticalTimeOracle, TotalTimeSums) {
  const Graph g = MixedGraph();
  PlatformModel hw;
  AnalyticalTimeOracle oracle(hw);
  double sum = 0.0;
  for (const Op& op : g.ops()) sum += oracle.Time(g, op.id);
  EXPECT_DOUBLE_EQ(oracle.TotalTime(g), sum);
}

TEST(NoisyTimeOracle, DeterministicPerSeedAndOp) {
  const Graph g = MixedGraph();
  PlatformModel hw;
  AnalyticalTimeOracle base(hw);
  NoisyTimeOracle a(base, 0.2, 123);
  NoisyTimeOracle b(base, 0.2, 123);
  NoisyTimeOracle c(base, 0.2, 999);
  for (const Op& op : g.ops()) {
    EXPECT_EQ(a.Time(g, op.id), b.Time(g, op.id));
  }
  EXPECT_NE(a.Time(g, 1), c.Time(g, 1));
}

TEST(NoisyTimeOracle, PreservesSignAndScale) {
  const Graph g = MixedGraph();
  PlatformModel hw;
  AnalyticalTimeOracle base(hw);
  NoisyTimeOracle noisy(base, 0.1, 77);
  for (const Op& op : g.ops()) {
    const double t0 = base.Time(g, op.id);
    const double t1 = noisy.Time(g, op.id);
    EXPECT_GE(t1, 0.0);
    if (t0 > 0.0) {
      EXPECT_GT(t1, t0 * 0.5);
      EXPECT_LT(t1, t0 * 2.0);
    } else {
      EXPECT_EQ(t1, 0.0);
    }
  }
}

TEST(NoisyTimeOracle, ZeroSigmaIsIdentity) {
  const Graph g = MixedGraph();
  PlatformModel hw;
  AnalyticalTimeOracle base(hw);
  NoisyTimeOracle noisy(base, 0.0, 42);
  for (const Op& op : g.ops()) {
    EXPECT_DOUBLE_EQ(noisy.Time(g, op.id), base.Time(g, op.id));
  }
}

}  // namespace
}  // namespace tictac::core
