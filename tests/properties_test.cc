#include "core/properties.h"

#include <gtest/gtest.h>

namespace tictac::core {
namespace {

// Figure 1a: recv1 -> op1 -> op2, recv2 -> op2.
struct Fig1a {
  Graph g;
  OpId recv1, recv2, op1, op2;
  Fig1a(double t_r1 = 1.0, double t_r2 = 1.0, double t_o1 = 1.0,
        double t_o2 = 1.0) {
    recv1 = g.AddRecv("recv1", 0);
    recv2 = g.AddRecv("recv2", 0);
    op1 = g.AddCompute("op1", t_o1);
    op2 = g.AddCompute("op2", t_o2);
    g.AddEdge(recv1, op1);
    g.AddEdge(op1, op2);
    g.AddEdge(recv2, op2);
    oracle.Set(recv1, t_r1);
    oracle.Set(recv2, t_r2);
    oracle.Set(op1, t_o1);
    oracle.Set(op2, t_o2);
  }
  MapTimeOracle oracle{{}};
};

TEST(RecvSet, BasicOperations) {
  RecvSet a(130);
  a.Set(0);
  a.Set(64);
  a.Set(129);
  EXPECT_TRUE(a.Test(0));
  EXPECT_TRUE(a.Test(64));
  EXPECT_TRUE(a.Test(129));
  EXPECT_FALSE(a.Test(1));
  EXPECT_EQ(a.Count(), 3u);

  RecvSet b(130);
  b.Set(64);
  b.Set(100);
  EXPECT_EQ(a.IntersectCount(b), 1u);
  a.UnionWith(b);
  EXPECT_EQ(a.Count(), 4u);

  std::vector<std::size_t> bits;
  a.ForEach([&](std::size_t i) { bits.push_back(i); });
  EXPECT_EQ(bits, (std::vector<std::size_t>{0, 64, 100, 129}));
}

TEST(RecvSet, EmptySet) {
  RecvSet a(0);
  EXPECT_EQ(a.Count(), 0u);
  EXPECT_EQ(a.size_bits(), 0u);
  RecvSet b(0);
  a.UnionWith(b);  // no words to touch
  EXPECT_EQ(a.IntersectCount(b), 0u);
  std::size_t visits = 0;
  a.ForEach([&](std::size_t) { ++visits; });
  EXPECT_EQ(visits, 0u);

  // Sized but all-clear: still empty under every query.
  RecvSet c(97);
  EXPECT_EQ(c.Count(), 0u);
  c.ForEach([&](std::size_t) { ++visits; });
  EXPECT_EQ(visits, 0u);
}

TEST(RecvSet, CrossWordBoundaries) {
  RecvSet a(193);  // spans four words, last one partial
  for (const std::size_t i : {std::size_t{63}, std::size_t{64},
                              std::size_t{127}, std::size_t{128},
                              std::size_t{192}}) {
    a.Set(i);
  }
  EXPECT_EQ(a.Count(), 5u);
  EXPECT_TRUE(a.Test(63));
  EXPECT_TRUE(a.Test(64));
  EXPECT_FALSE(a.Test(65));
  EXPECT_TRUE(a.Test(192));

  RecvSet b(193);
  b.Set(64);
  b.Set(128);
  b.Set(191);
  EXPECT_EQ(a.IntersectCount(b), 2u);
  a.UnionWith(b);
  EXPECT_EQ(a.Count(), 6u);
  std::vector<std::size_t> bits;
  a.ForEach([&](std::size_t i) { bits.push_back(i); });
  EXPECT_EQ(bits,
            (std::vector<std::size_t>{63, 64, 127, 128, 191, 192}));
}

TEST(RecvSet, ForEachAndVisitsIntersectionInOrder) {
  RecvSet a(150);
  RecvSet mask(150);
  for (const std::size_t i : {std::size_t{0}, std::size_t{63},
                              std::size_t{64}, std::size_t{100},
                              std::size_t{149}}) {
    a.Set(i);
  }
  mask.Set(63);
  mask.Set(100);
  mask.Set(120);  // in mask only — must not be visited
  std::vector<std::size_t> bits;
  a.ForEachAnd(mask, [&](std::size_t i) { bits.push_back(i); });
  EXPECT_EQ(bits, (std::vector<std::size_t>{63, 100}));
}

TEST(RecvSet, FullSet) {
  constexpr std::size_t kBits = 130;
  RecvSet a(kBits);
  for (std::size_t i = 0; i < kBits; ++i) a.Set(i);
  EXPECT_EQ(a.Count(), kBits);
  EXPECT_EQ(a.IntersectCount(a), kBits);
  std::size_t expected = 0;
  bool in_order = true;
  a.ForEach([&](std::size_t i) { in_order = in_order && i == expected++; });
  EXPECT_TRUE(in_order);
  EXPECT_EQ(expected, kBits);

  RecvSet b(kBits);
  b.Set(0);
  b.UnionWith(a);
  EXPECT_EQ(b.Count(), kBits);
}

#ifndef NDEBUG
TEST(RecvSetDeathTest, MismatchedSizesAssert) {
  RecvSet a(64);
  RecvSet b(128);
  EXPECT_DEATH(a.UnionWith(b), "size mismatch");
  EXPECT_DEATH((void)a.IntersectCount(b), "size mismatch");
  EXPECT_DEATH(a.ForEachAnd(b, [](std::size_t) {}), "size mismatch");
}
#endif

TEST(PropertyIndex, CommunicationDependenciesFig1a) {
  Fig1a f;
  PropertyIndex index(f.g);
  ASSERT_EQ(index.recvs().size(), 2u);
  // op1.dep = {recv1}; op2.dep = {recv1, recv2} (transitive through op1).
  EXPECT_EQ(index.dep(f.op1).Count(), 1u);
  EXPECT_TRUE(index.dep(f.op1).Test(0));
  EXPECT_EQ(index.dep(f.op2).Count(), 2u);
  // A recv depends on itself.
  EXPECT_TRUE(index.dep(f.recv1).Test(0));
  EXPECT_EQ(index.dep(f.recv1).Count(), 1u);
}

TEST(PropertyIndex, TransitiveDependenciesOnChain) {
  // recv0 -> c0 -> c1 -> c2, recv1 -> c1, recv2 -> c2.
  Graph g;
  const OpId r0 = g.AddRecv("r0", 0);
  const OpId r1 = g.AddRecv("r1", 0);
  const OpId r2 = g.AddRecv("r2", 0);
  const OpId c0 = g.AddCompute("c0", 1);
  const OpId c1 = g.AddCompute("c1", 1);
  const OpId c2 = g.AddCompute("c2", 1);
  g.AddEdge(r0, c0);
  g.AddEdge(c0, c1);
  g.AddEdge(r1, c1);
  g.AddEdge(c1, c2);
  g.AddEdge(r2, c2);
  PropertyIndex index(g);
  EXPECT_EQ(index.dep(c0).Count(), 1u);
  EXPECT_EQ(index.dep(c1).Count(), 2u);
  EXPECT_EQ(index.dep(c2).Count(), 3u);
}

TEST(PropertyIndex, ConsumersIsTransposeOfDepWithoutRecvs) {
  Fig1a f;
  PropertyIndex index(f.g);
  // recv1 is (transitively) consumed by op1 and op2; recv2 only by op2.
  // Recv ops themselves never appear in a consumer set.
  const RecvSet& c1 = index.consumers(0);
  EXPECT_TRUE(c1.Test(static_cast<std::size_t>(f.op1)));
  EXPECT_TRUE(c1.Test(static_cast<std::size_t>(f.op2)));
  EXPECT_FALSE(c1.Test(static_cast<std::size_t>(f.recv1)));
  EXPECT_EQ(c1.Count(), 2u);
  const RecvSet& c2 = index.consumers(1);
  EXPECT_FALSE(c2.Test(static_cast<std::size_t>(f.op1)));
  EXPECT_TRUE(c2.Test(static_cast<std::size_t>(f.op2)));
  EXPECT_EQ(c2.Count(), 1u);
}

TEST(UpdateProperties, Fig1aPaperValues) {
  // The paper's worked example: op1.M = Time(recv1), op2.M = Time(recv1)
  // + Time(recv2), recv1.P = Time(op1), recv2.P = 0, and both recvs' M+
  // equal op2.M.
  Fig1a f(/*t_r1=*/2.0, /*t_r2=*/3.0, /*t_o1=*/5.0, /*t_o2=*/7.0);
  PropertyIndex index(f.g);
  std::vector<double> op_M;
  const auto props =
      index.UpdateProperties(f.oracle, {true, true}, &op_M);

  EXPECT_DOUBLE_EQ(op_M[static_cast<std::size_t>(f.op1)], 2.0);
  EXPECT_DOUBLE_EQ(op_M[static_cast<std::size_t>(f.op2)], 5.0);

  const auto& p1 = props[0];
  const auto& p2 = props[1];
  EXPECT_EQ(p1.op, f.recv1);
  EXPECT_DOUBLE_EQ(p1.M, 2.0);
  EXPECT_DOUBLE_EQ(p1.P, 5.0);      // only op1 activates with recv1 alone
  EXPECT_DOUBLE_EQ(p2.P, 0.0);      // nothing runs with recv2 alone
  EXPECT_DOUBLE_EQ(p1.Mplus, 5.0);  // op2.M, includes recv1's own time
  EXPECT_DOUBLE_EQ(p2.Mplus, 5.0);
}

TEST(UpdateProperties, CompletedRecvShiftsProperties) {
  Fig1a f(2.0, 3.0, 5.0, 7.0);
  PropertyIndex index(f.g);
  // recv1 already transferred: only recv2 outstanding.
  const auto props = index.UpdateProperties(f.oracle, {false, true});
  EXPECT_EQ(props[0].op, kInvalidOp);  // completed recvs carry no props
  const auto& p2 = props[1];
  EXPECT_DOUBLE_EQ(p2.M, 3.0);
  // op2 now depends only on recv2, so it contributes to P, not M+.
  EXPECT_DOUBLE_EQ(p2.P, 7.0);
  EXPECT_EQ(p2.Mplus, kInfinity);
}

TEST(UpdateProperties, GeneralOracleCountsTransfers) {
  Fig1a f;
  PropertyIndex index(f.g);
  GeneralTimeOracle oracle;
  std::vector<double> op_M;
  const auto props = index.UpdateProperties(oracle, {true, true}, &op_M);
  // Under Eq. 5, M counts outstanding recv dependencies.
  EXPECT_DOUBLE_EQ(op_M[static_cast<std::size_t>(f.op2)], 2.0);
  EXPECT_DOUBLE_EQ(props[0].P, 0.0);  // compute ops cost 0
  EXPECT_DOUBLE_EQ(props[0].Mplus, 2.0);
}

TEST(UpdateProperties, Case2MplusOrdering) {
  // Constructed per §4.3 Case 2: with every P = 0, M+ must order
  // A = B < C < D.
  Graph g;
  const OpId a = g.AddRecv("A", 0);
  const OpId b = g.AddRecv("B", 0);
  const OpId c = g.AddRecv("C", 0);
  const OpId d = g.AddRecv("D", 0);
  const OpId opX = g.AddCompute("opX", 1);  // needs A, B
  const OpId opY = g.AddCompute("opY", 1);  // needs B, C
  const OpId opZ = g.AddCompute("opZ", 1);  // needs C, D
  g.AddEdge(a, opX);
  g.AddEdge(b, opX);
  g.AddEdge(b, opY);
  g.AddEdge(c, opY);
  g.AddEdge(c, opZ);
  g.AddEdge(d, opZ);
  MapTimeOracle oracle({{a, 1.0}, {b, 1.0}, {c, 3.0}, {d, 5.0}});
  PropertyIndex index(g);
  const auto props =
      index.UpdateProperties(oracle, {true, true, true, true});
  EXPECT_DOUBLE_EQ(props[0].Mplus, 2.0);  // A: opX needs A+B
  EXPECT_DOUBLE_EQ(props[1].Mplus, 2.0);  // B: min(opX, opY) = 2
  EXPECT_DOUBLE_EQ(props[2].Mplus, 4.0);  // C: min(opY=4, opZ=8)
  EXPECT_DOUBLE_EQ(props[3].Mplus, 8.0);  // D: opZ
  for (const auto& p : props) EXPECT_DOUBLE_EQ(p.P, 0.0);
}

TEST(UpdateProperties, RecvOwnMIsItsTransferTime) {
  Fig1a f(2.0, 3.0, 5.0, 7.0);
  PropertyIndex index(f.g);
  const auto props = index.UpdateProperties(f.oracle, {true, true});
  EXPECT_DOUBLE_EQ(props[0].M, 2.0);
  EXPECT_DOUBLE_EQ(props[1].M, 3.0);
}

}  // namespace
}  // namespace tictac::core
