#include "core/chunking.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/tic.h"
#include "models/builder.h"
#include "models/zoo.h"

namespace tictac::core {
namespace {

Graph TwoTransferGraph() {
  Graph g;
  g.AddRecv("big", 10 << 20, 0);    // 10 MiB
  g.AddRecv("small", 1 << 20, 1);   // 1 MiB
  const OpId c = g.AddCompute("c", 1.0);
  g.AddEdge(0, c);
  g.AddEdge(1, c);
  if (true) {
    const OpId pg = g.AddCompute("pg", 0.5);
    g.AddEdge(c, pg);
    const OpId s = g.AddSend("push", 10 << 20, 0);
    g.AddEdge(pg, s);
  }
  return g;
}

TEST(Chunking, SplitsOversizedTransfersOnly) {
  const Graph g = TwoTransferGraph();
  const Graph chunked = ChunkTransfers(g, {.max_chunk_bytes = 4 << 20});
  // big recv -> 3 chunks + concat; small recv untouched; send -> split + 3.
  EXPECT_EQ(chunked.RecvOps().size(), 4u);  // 3 chunks + small
  EXPECT_EQ(chunked.OpsOfKind(OpKind::kSend).size(), 3u);
  EXPECT_TRUE(chunked.IsAcyclic());
}

TEST(Chunking, PreservesTotalBytesAndParams) {
  const Graph g = TwoTransferGraph();
  const Graph chunked = ChunkTransfers(g, {.max_chunk_bytes = 3 << 20});
  EXPECT_EQ(chunked.TotalRecvBytes(), g.TotalRecvBytes());
  for (OpId r : chunked.RecvOps()) {
    EXPECT_LE(chunked.op(r).bytes, 3 << 20);
    EXPECT_GE(chunked.op(r).param, 0);
  }
}

TEST(Chunking, ChunkRecvsAreRootsAndFeedConcat) {
  const Graph g = TwoTransferGraph();
  const Graph chunked = ChunkTransfers(g, {.max_chunk_bytes = 4 << 20});
  for (OpId r : chunked.RecvOps()) {
    EXPECT_TRUE(chunked.preds(r).empty());
    ASSERT_EQ(chunked.succs(r).size(), 1u);
  }
  // Chunked sends are leaves.
  for (OpId s : chunked.OpsOfKind(OpKind::kSend)) {
    EXPECT_TRUE(chunked.succs(s).empty());
  }
}

TEST(Chunking, DisabledIsStructurePreserving) {
  const Graph g = TwoTransferGraph();
  const Graph same = ChunkTransfers(g, {.max_chunk_bytes = 0});
  EXPECT_EQ(same.size(), g.size());
  EXPECT_EQ(same.num_edges(), g.num_edges());
  EXPECT_EQ(same.TotalRecvBytes(), g.TotalRecvBytes());
}

TEST(Chunking, PreservesComputeCosts) {
  const Graph g = TwoTransferGraph();
  const Graph chunked = ChunkTransfers(g, {.max_chunk_bytes = 1 << 20});
  double cost_before = 0.0;
  double cost_after = 0.0;
  for (const Op& op : g.ops()) cost_before += op.cost;
  for (const Op& op : chunked.ops()) cost_after += op.cost;
  EXPECT_DOUBLE_EQ(cost_before, cost_after);
}

TEST(Chunking, SchedulableAfterRewrite) {
  const auto& info = models::FindModel("VGG-16");
  const Graph g = models::BuildWorkerGraph(info, {.training = true});
  const Graph chunked = ChunkTransfers(g, {.max_chunk_bytes = 8 << 20});
  EXPECT_GT(chunked.RecvOps().size(), g.RecvOps().size());
  const Schedule schedule = Tic(chunked);
  EXPECT_TRUE(schedule.CoversAllRecvs(chunked));
}

TEST(Chunking, ValidateRejectsNonPositiveSizesWithActionableMessage) {
  // ChunkTransfers treats <= 0 as "chunking off", but callers that meant
  // to chunk (the spec's chunk= knob, the ir::chunk_transfers pass) call
  // Validate() and must get told how to fix the value.
  try {
    ChunkingOptions{.max_chunk_bytes = 0}.Validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("max_chunk_bytes must be > 0"), std::string::npos)
        << what;
    EXPECT_NE(what.find("got 0"), std::string::npos) << what;
    EXPECT_NE(what.find("disable chunking"), std::string::npos) << what;
  }
  EXPECT_THROW(ChunkingOptions{.max_chunk_bytes = -1}.Validate(),
               std::invalid_argument);
  EXPECT_NO_THROW(ChunkingOptions{.max_chunk_bytes = 1}.Validate());
}

TEST(Chunking, ChunkSizesNearEqual) {
  Graph g;
  g.AddRecv("r", 10, 0);
  const OpId c = g.AddCompute("c", 1.0);
  g.AddEdge(0, c);
  const Graph chunked = ChunkTransfers(g, {.max_chunk_bytes = 3});
  // ceil(10/3) = 4 chunks of sizes {3,3,2,2}.
  std::vector<std::int64_t> sizes;
  for (OpId r : chunked.RecvOps()) sizes.push_back(chunked.op(r).bytes);
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<std::int64_t>{2, 2, 3, 3}));
}

}  // namespace
}  // namespace tictac::core
