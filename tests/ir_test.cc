// Unit tests of the arena-interned task IR and the pass machinery
// (DESIGN.md §10): PredArena interning, Module defaults and invariant
// validation, the stage contract / pass-order errors, the pass registry
// (spec parsing, argument handling, unknown-name diagnostics), pipeline
// options (invariant checks, dump hooks), and the satellite knobs the
// pipeline consumes (ChunkingOptions::Validate, shard strategies,
// topology tokens and their ClusterConfig validation rules).
#include "ir/module.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/chunking.h"
#include "core/tic.h"
#include "ir/lower.h"
#include "ir/pass.h"
#include "models/builder.h"
#include "models/zoo.h"
#include "runtime/sharding.h"

namespace tictac::ir {
namespace {

using runtime::ClusterConfig;
using runtime::EnvG;

// ---------------------------------------------------------------------------
// PredArena

TEST(PredArena, EmptyListIsAlwaysIdZero) {
  PredArena arena;
  EXPECT_EQ(arena.Intern({}), PredArena::kEmptyList);
  EXPECT_TRUE(arena.list(PredArena::kEmptyList).empty());
  EXPECT_EQ(arena.num_lists(), 1u);  // the empty list itself
  EXPECT_EQ(arena.pool_entries(), 0u);
}

TEST(PredArena, InternsStructurallyIdenticalListsOnce) {
  PredArena arena;
  const std::vector<NodeId> a{3, 1, 2};
  const std::vector<NodeId> b{3, 1, 2};
  const std::vector<NodeId> c{3, 1};
  const auto ida = arena.Intern(a);
  const auto idb = arena.Intern(b);
  const auto idc = arena.Intern(c);
  EXPECT_EQ(ida, idb);
  EXPECT_NE(ida, idc);
  EXPECT_EQ(arena.num_lists(), 3u);       // empty, {3,1,2}, {3,1}
  EXPECT_EQ(arena.pool_entries(), 5u);    // 3 + 2 interned NodeIds
  EXPECT_EQ(arena.dedup_hits(), 1u);      // b resolved to a's storage
  EXPECT_EQ(arena.list(ida).size(), 3u);
  EXPECT_EQ(arena.list(ida)[0], 3);
  EXPECT_EQ(arena.list(idc).size(), 2u);
}

TEST(PredArena, OrderIsContentNotSet) {
  PredArena arena;
  const std::vector<NodeId> a{1, 2};
  const std::vector<NodeId> b{2, 1};
  EXPECT_NE(arena.Intern(a), arena.Intern(b));  // pred order is observable
}

// ---------------------------------------------------------------------------
// Module

TEST(Module, AddNodeDefaultsMatchSimTaskDefaults) {
  Module m;
  const NodeId n = m.AddNode();
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.duration(n), 0.0);
  EXPECT_EQ(m.resource(n), -1);  // unassigned until a lowering pass
  EXPECT_EQ(m.priority(n), sim::kNoPriority);
  EXPECT_EQ(m.gate_group(n), -1);
  EXPECT_EQ(m.gate_rank(n), -1);
  EXPECT_TRUE(m.preds(n).empty());
  EXPECT_EQ(m.kind(n), core::OpKind::kCompute);
  EXPECT_EQ(m.op(n), core::kInvalidOp);
  EXPECT_EQ(m.worker(n), -1);
  EXPECT_EQ(m.job(n), -1);
  EXPECT_EQ(m.iteration(n), 0);
  EXPECT_EQ(m.param(n), -1);
  EXPECT_EQ(m.rank(n), kNoRank);
  EXPECT_FALSE(m.is_delay(n));
}

// A minimal well-formed single-job logical module: two nodes, one edge.
Module TinyModule() {
  Module m;
  const NodeId a = m.AddNode();
  const NodeId b = m.AddNode();
  const NodeId preds[] = {a};
  m.SetPreds(b, preds);
  m.jobs.emplace_back();
  m.jobs.back().config = EnvG(1, 1, true);
  m.ranges.push_back(JobRange{0, 2, kNoNode, 0});
  return m;
}

TEST(Module, ValidateAcceptsWellFormedModule) {
  EXPECT_NO_THROW(TinyModule().Validate());
}

TEST(Module, ValidateRejectsOutOfRangePreds) {
  Module m = TinyModule();
  const NodeId bogus[] = {42};
  m.SetPreds(1, bogus);
  EXPECT_THROW(m.Validate(), std::invalid_argument);
}

TEST(Module, ValidateRejectsSelfDependency) {
  Module m = TinyModule();
  const NodeId self[] = {1};
  m.SetPreds(1, self);
  EXPECT_THROW(m.Validate(), std::invalid_argument);
}

TEST(Module, ValidateRejectsCycles) {
  Module m = TinyModule();
  const NodeId back[] = {1};  // a <- b while b <- a
  m.SetPreds(0, back);
  try {
    m.Validate();
    FAIL() << "expected a cycle diagnostic";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("cycle"), std::string::npos)
        << e.what();
  }
}

TEST(Module, ValidateRejectsRangesThatDoNotTile) {
  Module m = TinyModule();
  m.ranges.back().last = 1;  // one trailing node unowned
  EXPECT_THROW(m.Validate(), std::invalid_argument);
}

TEST(Module, ValidateRejectsResourcesBeforeLowering) {
  Module m = TinyModule();
  m.resource(0) = 3;  // kLogical nodes must not carry resources
  EXPECT_THROW(m.Validate(), std::invalid_argument);
}

TEST(Module, ValidateRejectsHalfSetGates) {
  Module m = TinyModule();
  m.gate_group(0) = 2;  // gate_rank left unset
  EXPECT_THROW(m.Validate(), std::invalid_argument);
}

TEST(Module, ValidateRejectsNegativeDurations) {
  Module m = TinyModule();
  m.duration(0) = -1.0;
  EXPECT_THROW(m.Validate(), std::invalid_argument);
}

TEST(Module, DebugSummaryNamesStageAndCounts) {
  const Module m = TinyModule();
  const std::string summary = m.DebugSummary();
  EXPECT_NE(summary.find("logical"), std::string::npos) << summary;
  EXPECT_NE(summary.find("nodes=2"), std::string::npos) << summary;
}

// ---------------------------------------------------------------------------
// Pass registry

TEST(PassRegistry, KnowsEveryBuiltinPass) {
  const auto names = PassRegistry::Global().Names();
  for (const char* expected :
       {"apply_arrival_offsets", "chunk_transfers", "compute_schedules",
        "expand_replicas", "lower_allreduce_ring", "lower_ps_fabric",
        "merge_jobs", "pipeline_iters", "shard_params"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing pass " << expected;
  }
}

TEST(PassRegistry, UnknownNameErrorListsWhatIsRegistered) {
  try {
    PassRegistry::Global().Create("frobnicate");
    FAIL() << "expected unknown-pass diagnostic";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown pass 'frobnicate'"), std::string::npos)
        << what;
    // The diagnostic lists the registry so typos are self-correcting.
    EXPECT_NE(what.find("expand_replicas"), std::string::npos) << what;
  }
}

TEST(PassRegistry, DuplicateRegistrationIsRejected) {
  EXPECT_THROW(PassRegistry::Global().Register(
                   "expand_replicas",
                   [](const std::string&) -> std::shared_ptr<const Pass> {
                     return nullptr;
                   }),
               std::invalid_argument);
}

TEST(PassRegistry, ArglessPassesRejectArguments) {
  EXPECT_THROW(PassRegistry::Global().Create("expand_replicas:3"),
               std::invalid_argument);
  EXPECT_NO_THROW(PassRegistry::Global().Create("expand_replicas"));
}

TEST(PassRegistry, PipelineItersParsesItsArgument) {
  const auto pass = PassRegistry::Global().Create("pipeline_iters:4");
  EXPECT_EQ(pass->name(), "pipeline_iters:4");
  EXPECT_THROW(PassRegistry::Global().Create("pipeline_iters"),
               std::invalid_argument);  // needs an argument
  EXPECT_THROW(PassRegistry::Global().Create("pipeline_iters:abc"),
               std::invalid_argument);  // integer argument
  EXPECT_THROW(PassRegistry::Global().Create("pipeline_iters:0"),
               std::invalid_argument);  // iterations must be >= 1
}

// ---------------------------------------------------------------------------
// Stage contract / pass ordering

// One real job (smallest zoo model) imported at kLogical.
Module LogicalModule(bool training = true, int workers = 2, int ps = 1) {
  const auto& info = models::FindModel("Inception v1");
  auto graph = std::make_shared<core::Graph>(
      models::BuildWorkerGraph(info, {.training = training}));
  Module m;
  JobInfo job;
  job.config = EnvG(workers, ps, training);
  job.ps_of_param = runtime::ShardParams(models::ParamSizes(info),
                                         ps);
  job.graph = graph;
  AddJob(m, std::move(job));
  return m;
}

TEST(PassOrdering, LoweringBeforeExpansionFailsLoudly) {
  Module m = LogicalModule();
  try {
    PassRegistry::Global().Create("lower_ps_fabric")->Run(m);
    FAIL() << "expected a stage diagnostic";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("ir.lower_ps_fabric: requires a replicated module"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("check the pass order"), std::string::npos) << what;
  }
}

TEST(PassOrdering, ChunkingAfterExpansionFailsLoudly) {
  Module m = LogicalModule();
  PassRegistry::Global().Create("expand_replicas")->Run(m);
  EXPECT_EQ(m.stage, Stage::kReplicated);
  EXPECT_THROW(PassRegistry::Global().Create("chunk_transfers")->Run(m),
               std::invalid_argument);
}

TEST(PassOrdering, MergeBeforeLoweringFailsLoudly) {
  Module m = LogicalModule();
  PassRegistry::Global().Create("expand_replicas")->Run(m);
  EXPECT_THROW(PassRegistry::Global().Create("merge_jobs")->Run(m),
               std::invalid_argument);
}

TEST(PassOrdering, StandardPresetReachesMerged) {
  Module m = StandardLoweringPipeline(runtime::Topology::kPsFabric)
                 .Run(LogicalModule());
  EXPECT_EQ(m.stage, Stage::kMerged);
  EXPECT_FALSE(m.ring);
  EXPECT_GT(m.num_resources, 0);
  EXPECT_EQ(m.total_workers, 2);
  EXPECT_NO_THROW(m.Validate());
}

TEST(PassOrdering, RingPresetSkipsThePsStage) {
  Module m = StandardLoweringPipeline(runtime::Topology::kRing)
                 .Run(LogicalModule());
  EXPECT_EQ(m.stage, Stage::kMerged);
  EXPECT_TRUE(m.ring);
  EXPECT_EQ(m.num_resources, 2 * 2);  // W workers + W ring links
}

TEST(PassPipeline, PresetNamesMatchTheDocumentedOrder) {
  const auto ps = StandardLoweringPipeline(runtime::Topology::kPsFabric, 3);
  EXPECT_EQ(ps.names(),
            (std::vector<std::string>{"expand_replicas", "lower_ps_fabric",
                                      "merge_jobs", "lower_flow_nics",
                                      "apply_arrival_offsets",
                                      "pipeline_iters:3"}));
  const auto full = FullLoweringPipeline(runtime::Topology::kPsFabric);
  EXPECT_EQ(full.names(),
            (std::vector<std::string>{
                "chunk_transfers", "shard_params", "compute_schedules",
                "expand_replicas", "lower_ps_fabric", "merge_jobs",
                "lower_flow_nics", "apply_arrival_offsets",
                "pipeline_iters:1"}));
  EXPECT_THROW(StandardLoweringPipeline(runtime::Topology::kPsFabric, 0),
               std::invalid_argument);
}

TEST(PassPipeline, DumpHookSeesEveryPassInOrder) {
  std::vector<std::string> seen;
  PipelineOptions options;
  options.check_invariants = true;
  options.dump = [&](const std::string& pass, const Module& module) {
    seen.push_back(pass);
    EXPECT_FALSE(module.DebugSummary().empty());
  };
  const auto pipeline =
      StandardLoweringPipeline(runtime::Topology::kPsFabric);
  pipeline.Run(LogicalModule(), options);
  EXPECT_EQ(seen, pipeline.names());
}

TEST(PassPipeline, InvariantCheckNamesTheFailingPass) {
  // A pass that corrupts the module: the pipeline's check_invariants
  // must attribute the violation to it by name.
  struct Corruptor final : Pass {
    std::string name() const override { return "corruptor"; }
    void Run(Module& module) const override { module.duration(0) = -1.0; }
  };
  PassPipeline pipeline;
  pipeline.Add(std::make_shared<Corruptor>());
  PipelineOptions options;
  options.check_invariants = true;
  try {
    pipeline.Run(TinyModule(), options);
    FAIL() << "expected an invariant diagnostic";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("after pass 'corruptor'"),
              std::string::npos)
        << e.what();
  }
}

TEST(PassPipeline, ChunkTransfersValidatesTheChunkSize) {
  Module m = LogicalModule();
  m.jobs[0].config.chunk_bytes = -5;
  try {
    PassRegistry::Global().Create("chunk_transfers")->Run(m);
    FAIL() << "expected a chunk-size diagnostic";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("max_chunk_bytes must be > 0"),
              std::string::npos)
        << e.what();
  }
}

TEST(PassPipeline, ArenaInterningPaysOffOnRealModules) {
  const Module m = StandardLoweringPipeline(runtime::Topology::kPsFabric)
                       .Run(LogicalModule(true, 4, 2));
  // Replicated fan-ins and §5.1 structures share pred lists: the interned
  // pool must be strictly smaller than the naive per-node layout.
  EXPECT_GT(m.arena().dedup_hits(), 0u);
  std::size_t naive = 0;
  for (NodeId n = 0; n < static_cast<NodeId>(m.size()); ++n) {
    naive += m.preds(n).size();
  }
  EXPECT_LT(m.arena().pool_entries(), naive);
}

// ---------------------------------------------------------------------------
// Satellite knobs consumed by the pipeline

TEST(ChunkingOptions, ValidateRejectsNonPositiveSizes) {
  EXPECT_NO_THROW(core::ChunkingOptions{.max_chunk_bytes = 1}.Validate());
  for (const std::int64_t bad : {std::int64_t{0}, std::int64_t{-4096}}) {
    try {
      core::ChunkingOptions{.max_chunk_bytes = bad}.Validate();
      FAIL() << "expected rejection of max_chunk_bytes=" << bad;
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("max_chunk_bytes must be > 0"), std::string::npos)
          << what;
      // Actionable: says how to disable chunking instead.
      EXPECT_NE(what.find("chunk_bytes = 0"), std::string::npos) << what;
    }
  }
}

TEST(ShardStrategy, TokensRoundTrip) {
  EXPECT_STREQ(runtime::ShardStrategyToken(runtime::ShardStrategy::kBytes),
               "bytes");
  EXPECT_STREQ(runtime::ShardStrategyToken(runtime::ShardStrategy::kEven),
               "even");
  EXPECT_EQ(runtime::ParseShardStrategy("bytes"),
            runtime::ShardStrategy::kBytes);
  EXPECT_EQ(runtime::ParseShardStrategy("even"),
            runtime::ShardStrategy::kEven);
  EXPECT_THROW(runtime::ParseShardStrategy("hash"), std::invalid_argument);
}

TEST(ShardStrategy, EvenIsRoundRobinAndBytesBalancesLoad) {
  const std::vector<std::int64_t> bytes{100, 1, 1, 1, 100, 1};
  const auto even =
      runtime::ShardParams(bytes, 2, runtime::ShardStrategy::kEven);
  for (std::size_t p = 0; p < bytes.size(); ++p) {
    EXPECT_EQ(even[p], static_cast<int>(p % 2));
  }
  const auto balanced =
      runtime::ShardParams(bytes, 2, runtime::ShardStrategy::kBytes);
  const auto loads = runtime::ShardLoads(bytes, balanced, 2);
  EXPECT_NE(balanced[0], balanced[4]);  // the two big params split up
  EXPECT_LE(std::max(loads[0], loads[1]) - std::min(loads[0], loads[1]), 2);
}

TEST(Topology, TokensRoundTrip) {
  EXPECT_STREQ(runtime::TopologyToken(runtime::Topology::kPsFabric), "ps");
  EXPECT_STREQ(runtime::TopologyToken(runtime::Topology::kRing), "ring");
  EXPECT_EQ(runtime::ParseTopology("ps"), runtime::Topology::kPsFabric);
  EXPECT_EQ(runtime::ParseTopology("ring"), runtime::Topology::kRing);
  EXPECT_THROW(runtime::ParseTopology("mesh"), std::invalid_argument);
}

TEST(Topology, ClusterValidateEnforcesRingRules) {
  ClusterConfig ring = EnvG(4, 1, true);
  ring.topology = runtime::Topology::kRing;
  EXPECT_NO_THROW(ring.Validate());
  ring.num_workers = 1;  // a ring needs >= 2 participants
  EXPECT_THROW(ring.Validate(), std::invalid_argument);
  ring.num_workers = 4;
  ring.training = false;  // all-reduce aggregates gradients: training only
  EXPECT_THROW(ring.Validate(), std::invalid_argument);
}

}  // namespace
}  // namespace tictac::ir
