#include "runtime/runner.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/policy_registry.h"
#include "models/zoo.h"

namespace tictac::runtime {
namespace {

TEST(Runner, DeterministicForSameSeed) {
  Runner runner(models::FindModel("Inception v1"), EnvG(4, 1, true));
  const auto a = runner.Run("tic", 3, 42);
  const auto b = runner.Run("tic", 3, 42);
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    EXPECT_EQ(a.iterations[i].makespan, b.iterations[i].makespan);
    EXPECT_EQ(a.iterations[i].recv_order, b.iterations[i].recv_order);
  }
}

TEST(Runner, SchedulingBeatsBaselineOnBranchyModels) {
  // The headline claim on a model with real scheduling headroom.
  for (const char* name : {"Inception v2", "ResNet-50 v2"}) {
    Runner runner(models::FindModel(name), EnvG(4, 1, false));
    const double base = runner.Run("baseline", 5, 7).Throughput();
    const double tic = runner.Run("tic", 5, 7).Throughput();
    const double tac = runner.Run("tac", 5, 7).Throughput();
    EXPECT_GT(tic, base * 1.02) << name;
    EXPECT_GT(tac, base * 1.02) << name;
  }
}

TEST(Runner, EfficiencyInUnitIntervalAndImprovedByScheduling) {
  Runner runner(models::FindModel("Inception v1"), EnvG(4, 2, false));
  const auto base = runner.Run("baseline", 5, 3);
  const auto tic = runner.Run("tic", 5, 3);
  for (const auto& it : base.iterations) {
    EXPECT_GE(it.mean_efficiency, 0.0);
    EXPECT_LE(it.mean_efficiency, 1.0 + 1e-9);
  }
  EXPECT_GT(tic.MeanEfficiency(), base.MeanEfficiency());
  EXPECT_GT(tic.MeanEfficiency(), 0.9);
}

TEST(Runner, SchedulingReducesStragglers) {
  Runner runner(models::FindModel("Inception v2"), EnvG(8, 2, false));
  const auto base = runner.Run("baseline", 8, 11);
  const auto tic = runner.Run("tic", 8, 11);
  EXPECT_LT(tic.MeanStragglerPct(), base.MeanStragglerPct());
}

TEST(Runner, EnforcedOrderIsConsistentOnSinglePs) {
  // §2.2: without enforcement every iteration sees a fresh order; with
  // TIC on a single PS channel the wire order is identical every time.
  ClusterConfig config = EnvG(2, 1, false);
  config.sim.out_of_order_probability = 0.0;
  Runner runner(models::FindModel("Inception v1"), config);
  const auto base = runner.Run("baseline", 10, 17);
  const auto tic = runner.Run("tic", 10, 17);
  EXPECT_EQ(base.UniqueRecvOrders(), 10);
  EXPECT_EQ(tic.UniqueRecvOrders(), 1);
}

TEST(Runner, WorkerFinishTimesPopulated) {
  Runner runner(models::FindModel("AlexNet v2"), EnvG(3, 1, true));
  const auto result = runner.Run("tac", 2, 5);
  for (const auto& it : result.iterations) {
    ASSERT_EQ(it.worker_finish.size(), 3u);
    for (double t : it.worker_finish) {
      EXPECT_GT(t, 0.0);
      EXPECT_LE(t, it.makespan + 1e-12);
    }
    EXPECT_GE(it.straggler_pct, 0.0);
    EXPECT_LE(it.straggler_pct, 100.0);
  }
}

TEST(Runner, ThroughputAccountsForWorkersAndBatch) {
  const auto& info = models::FindModel("Inception v1");
  ClusterConfig config = EnvG(4, 1, true);
  config.batch_factor = 2.0;
  Runner runner(info, config);
  const auto result = runner.Run("tic", 2, 1);
  EXPECT_DOUBLE_EQ(result.samples_per_iteration,
                   info.standard_batch * 2.0 * 4);
  EXPECT_NEAR(result.Throughput(),
              result.samples_per_iteration / result.MeanIterationTime(),
              1e-9);
}

TEST(Runner, MakeScheduleShapes) {
  Runner runner(models::FindModel("VGG-16"), EnvG(2, 1, true));
  const auto base = runner.MakeSchedule("baseline");
  EXPECT_EQ(base.size(), 0u);
  const auto tic = runner.MakeSchedule("tic");
  EXPECT_TRUE(tic.CoversAllRecvs(runner.worker_graph()));
  const auto tac = runner.MakeSchedule("tac");
  EXPECT_TRUE(tac.CoversAllRecvs(runner.worker_graph()));
}

TEST(Runner, NoisyOracleTacStillValid) {
  ClusterConfig config = EnvG(2, 1, true);
  config.tac_oracle_sigma = 0.3;
  Runner runner(models::FindModel("Inception v1"), config);
  const auto schedule = runner.MakeSchedule("tac");
  EXPECT_TRUE(schedule.CoversAllRecvs(runner.worker_graph()));
  const auto result = runner.Run("tac", 2, 9);
  EXPECT_GT(result.Throughput(), 0.0);
}

TEST(Runner, NameAndPolicyObjectCallsAreBitIdentical) {
  // The name-based convenience must route through the registry and yield
  // bit-identical results to passing the policy object directly.
  Runner runner(models::FindModel("Inception v2"), EnvG(4, 1, false));
  for (const char* name : {"baseline", "tic", "tac"}) {
    const auto via_name = runner.Run(name, 3, 29);
    const auto via_policy =
        runner.Run(*core::PolicyRegistry::Global().Create(name), 3, 29);
    ASSERT_EQ(via_name.iterations.size(), via_policy.iterations.size());
    for (std::size_t i = 0; i < via_name.iterations.size(); ++i) {
      EXPECT_EQ(via_name.iterations[i].makespan,
                via_policy.iterations[i].makespan);
      EXPECT_EQ(via_name.iterations[i].recv_order,
                via_policy.iterations[i].recv_order);
    }
  }
}

TEST(Runner, UnknownPolicyNameThrows) {
  Runner runner(models::FindModel("AlexNet v2"), EnvG(2, 1, false));
  EXPECT_THROW(runner.Run("no-such-policy", 1, 1), std::invalid_argument);
}

TEST(Runner, RejectsInvalidClusterConfig) {
  // Validation happens at construction (ClusterConfig::Validate), before
  // any graph is built.
  const auto& info = models::FindModel("AlexNet v2");
  ClusterConfig config = EnvG(2, 1, false);
  config.num_workers = 0;
  EXPECT_THROW(Runner(info, config), std::invalid_argument);
  config = EnvG(2, 1, false);
  config.batch_factor = 0.0;
  EXPECT_THROW(Runner(info, config), std::invalid_argument);
  config = EnvG(2, 1, false);
  config.chunk_bytes = -1;
  EXPECT_THROW(Runner(info, config), std::invalid_argument);
}

TEST(Runner, EmptyResultAccessorsAreSafe) {
  ExperimentResult empty;
  EXPECT_EQ(empty.MeanIterationTime(), 0.0);
  EXPECT_EQ(empty.Throughput(), 0.0);
  EXPECT_EQ(empty.MaxStragglerPct(), 0.0);
  EXPECT_EQ(empty.MeanEfficiency(), 0.0);
  EXPECT_EQ(empty.UniqueRecvOrders(), 0);
}

class AllModelsRunnerTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(AllModelsRunnerTest, EndToEndInvariants) {
  const auto& info = models::FindModel(GetParam());
  for (const bool training : {false, true}) {
    Runner runner(info, EnvG(2, 1, training));
    const auto tic = runner.Run("tic", 2, 13);
    EXPECT_GT(tic.Throughput(), 0.0) << info.name;
    for (const auto& it : tic.iterations) {
      EXPECT_GE(it.mean_efficiency, 0.0) << info.name;
      EXPECT_LE(it.mean_efficiency, 1.0 + 1e-9) << info.name;
      EXPECT_EQ(it.recv_order.size(),
                static_cast<std::size_t>(info.num_params));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, AllModelsRunnerTest,
    ::testing::Values("AlexNet v2", "Inception v1", "Inception v3",
                      "ResNet-50 v1", "ResNet-101 v2", "VGG-19"),
    [](const auto& param) {
      std::string name = param.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace tictac::runtime
