// Multi-job shared-cluster lowering (DESIGN.md §6): spec grammar
// round-trips, fabric-sharing validation, the 1-job bit-identity with
// the single-job Session path, per-job/combined slicing consistency,
// genuine cross-job contention, and arrival offsets.
#include "runtime/multijob.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "harness/session.h"
#include "util/stats.h"

namespace tictac::runtime {
namespace {

ExperimentSpec Job(const std::string& model, int workers, int ps,
                   bool training, const std::string& policy,
                   int iterations = 3, std::uint64_t seed = 5) {
  ExperimentSpec spec;
  spec.model = model;
  spec.cluster.workers = workers;
  spec.cluster.ps = ps;
  spec.cluster.training = training;
  spec.policy = policy;
  spec.iterations = iterations;
  spec.seed = seed;
  return spec;
}

TEST(MultiJobSpec, ToStringRoundTripsAndCollapsesReplicas) {
  MultiJobSpec spec;
  spec.jobs.push_back({Job("Inception v1", 4, 2, true, "tac"), 0.0});
  spec.jobs.push_back({Job("Inception v1", 4, 2, true, "tac"), 0.0});
  spec.jobs.push_back({Job("VGG-16", 2, 2, false, "baseline"), 0.05});

  const std::string text = spec.ToString();
  EXPECT_NE(text.find("2x{"), std::string::npos) << text;
  EXPECT_NE(text.find("}@0.05"), std::string::npos) << text;
  EXPECT_EQ(MultiJobSpec::Parse(text), spec);
}

TEST(MultiJobSpec, ParseExpandsCountsAndAcceptsJobsPrefix) {
  const auto with_prefix = MultiJobSpec::Parse(
      "jobs=2x{envG:workers=2:ps=1:training model=Inception v1 policy=tic "
      "iterations=3 seed=5}");
  ASSERT_EQ(with_prefix.jobs.size(), 2u);
  EXPECT_EQ(with_prefix.jobs[0], with_prefix.jobs[1]);
  EXPECT_EQ(with_prefix.jobs[0].spec.model, "Inception v1");

  const auto without_prefix = MultiJobSpec::Parse(
      "2x{envG:workers=2:ps=1:training model=Inception v1 policy=tic "
      "iterations=3 seed=5}");
  EXPECT_EQ(with_prefix, without_prefix);
}

TEST(MultiJobSpec, ParseRejectsMalformedInput) {
  EXPECT_THROW(MultiJobSpec::Parse(""), std::invalid_argument);
  EXPECT_THROW(MultiJobSpec::Parse("jobs="), std::invalid_argument);
  EXPECT_THROW(MultiJobSpec::Parse("2x"), std::invalid_argument);
  EXPECT_THROW(MultiJobSpec::Parse("0x{envG:workers=2:ps=1 model=VGG-16}"),
               std::invalid_argument);
  EXPECT_THROW(
      MultiJobSpec::Parse("{envG:workers=2:ps=1 model=VGG-16"),  // no '}'
      std::invalid_argument);
  EXPECT_THROW(
      MultiJobSpec::Parse(
          "{envG:workers=2:ps=1 model=VGG-16 iterations=3 seed=5}@later"),
      std::invalid_argument);
}

TEST(MultiJobSpec, ValidateEnforcesTheSharedFabric) {
  MultiJobSpec mismatched_ps;
  mismatched_ps.jobs.push_back({Job("VGG-16", 2, 1, false, "tic"), 0.0});
  mismatched_ps.jobs.push_back({Job("VGG-16", 2, 2, false, "tic"), 0.0});
  EXPECT_THROW(mismatched_ps.Validate(), std::invalid_argument);

  MultiJobSpec mismatched_env;
  mismatched_env.jobs.push_back({Job("VGG-16", 2, 1, false, "tic"), 0.0});
  mismatched_env.jobs.push_back({Job("VGG-16", 2, 1, false, "tic"), 0.0});
  mismatched_env.jobs[1].spec.cluster.env = "envC";
  EXPECT_THROW(mismatched_env.Validate(), std::invalid_argument);

  MultiJobSpec mismatched_seed;
  mismatched_seed.jobs.push_back({Job("VGG-16", 2, 1, false, "tic"), 0.0});
  mismatched_seed.jobs.push_back(
      {Job("VGG-16", 2, 1, false, "tic", 3, /*seed=*/9), 0.0});
  EXPECT_THROW(mismatched_seed.Validate(), std::invalid_argument);

  MultiJobSpec negative_offset;
  negative_offset.jobs.push_back({Job("VGG-16", 2, 1, false, "tic"), -1.0});
  EXPECT_THROW(negative_offset.Validate(), std::invalid_argument);

  MultiJobSpec empty;
  EXPECT_THROW(empty.Validate(), std::invalid_argument);
}

// The acceptance bar of the subsystem: one job on the shared fabric IS
// the single-job path, bit for bit — same schedule (the bandwidth scale
// degenerates to exactly 1), same task graph, same seeds, same stats.
TEST(MultiJob, SingleJobBitIdenticalToSession) {
  const ExperimentSpec spec = Job("Inception v1", 2, 1, true, "tac");
  MultiJobSpec multi;
  multi.jobs.push_back({spec, 0.0});

  harness::Session session;
  const ExperimentResult single = session.Run(spec);
  const MultiJobRunner runner(multi);
  const MultiJobResult shared = runner.Run();

  ASSERT_EQ(shared.jobs.size(), 1u);
  for (const ExperimentResult* result :
       {&shared.jobs[0], &shared.combined}) {
    ASSERT_EQ(result->iterations.size(), single.iterations.size());
    for (std::size_t i = 0; i < single.iterations.size(); ++i) {
      EXPECT_EQ(result->iterations[i].makespan,
                single.iterations[i].makespan);
      EXPECT_EQ(result->iterations[i].worker_finish,
                single.iterations[i].worker_finish);
      EXPECT_EQ(result->iterations[i].straggler_pct,
                single.iterations[i].straggler_pct);
      EXPECT_EQ(result->iterations[i].mean_efficiency,
                single.iterations[i].mean_efficiency);
      EXPECT_EQ(result->iterations[i].overlap_fraction,
                single.iterations[i].overlap_fraction);
      EXPECT_EQ(result->iterations[i].recv_order,
                single.iterations[i].recv_order);
    }
    EXPECT_EQ(result->samples_per_iteration, single.samples_per_iteration);
    EXPECT_EQ(result->Throughput(), single.Throughput());
    EXPECT_EQ(result->MeanIterationTime(), single.MeanIterationTime());
    EXPECT_EQ(result->UniqueRecvOrders(), single.UniqueRecvOrders());
  }
}

TEST(MultiJob, SingleJobLoweringMatchesLowerCluster) {
  MultiJobSpec multi;
  multi.jobs.push_back({Job("Inception v1", 2, 1, true, "tic"), 0.0});
  const MultiJobRunner runner(multi);
  const MultiJobLowering& lowering = runner.lowering();

  ASSERT_EQ(lowering.jobs.size(), 1u);
  const Lowering& local = lowering.jobs[0].lowering;
  EXPECT_EQ(lowering.combined.num_resources, local.num_resources);
  EXPECT_EQ(lowering.combined.tasks.size(), local.tasks.size());
  EXPECT_EQ(lowering.jobs[0].first_task, 0);
  EXPECT_EQ(lowering.jobs[0].delay_task, -1);
  for (std::size_t t = 0; t < local.tasks.size(); ++t) {
    EXPECT_EQ(lowering.combined.tasks[t].resource, local.tasks[t].resource);
    EXPECT_EQ(lowering.combined.tasks[t].duration, local.tasks[t].duration);
    EXPECT_EQ(lowering.combined.tasks[t].preds, local.tasks[t].preds);
    EXPECT_EQ(lowering.combined.tasks[t].gate_group,
              local.tasks[t].gate_group);
  }
}

// Each task belongs to exactly one job, so the combined makespan is the
// max over the per-job makespans, iteration by iteration — the "sums
// consistently" criterion.
TEST(MultiJob, CombinedMakespanIsMaxOverJobs) {
  MultiJobSpec multi;
  multi.jobs.push_back({Job("Inception v1", 2, 2, true, "tac"), 0.0});
  multi.jobs.push_back({Job("VGG-16", 2, 2, false, "baseline"), 0.0});
  const MultiJobRunner runner(multi);
  const MultiJobResult result = runner.Run();

  ASSERT_EQ(result.jobs.size(), 2u);
  for (std::size_t i = 0; i < result.combined.iterations.size(); ++i) {
    double max_job = 0.0;
    for (const ExperimentResult& job : result.jobs) {
      max_job = std::max(max_job, job.iterations[i].makespan);
    }
    EXPECT_EQ(result.combined.iterations[i].makespan, max_job);
  }
  EXPECT_EQ(result.combined.samples_per_iteration,
            result.jobs[0].samples_per_iteration +
                result.jobs[1].samples_per_iteration);
}

TEST(MultiJob, SharedFabricLayoutCollapsesPsResources) {
  MultiJobSpec multi;
  multi.jobs.push_back({Job("Inception v1", 2, 2, true, "tic"), 0.0});
  multi.jobs.push_back({Job("Inception v1", 3, 2, true, "tic"), 0.0});
  const MultiJobRunner runner(multi);
  const MultiJobLowering& lowering = runner.lowering();

  const int T = lowering.total_workers;
  const int S = lowering.num_ps;
  EXPECT_EQ(T, 5);
  EXPECT_EQ(S, 2);
  EXPECT_EQ(lowering.combined.num_resources, T + 2 * T * S + S);
  // Both jobs' PS-side tasks (read/aggregate/update) land on the shared
  // S bookkeeping CPUs at the top of the layout.
  const int ps_base = T + 2 * T * S;
  for (const MultiJobLowering::JobSlice& slice : lowering.jobs) {
    bool saw_ps_task = false;
    for (sim::TaskId t = slice.first_task; t < slice.last_task; ++t) {
      const sim::Task& task = lowering.combined.tasks[
          static_cast<std::size_t>(t)];
      if (task.worker < 0) {
        EXPECT_GE(task.resource, ps_base);
        EXPECT_LT(task.resource, ps_base + S);
        saw_ps_task = true;
      }
    }
    EXPECT_TRUE(saw_ps_task);
  }
}

// Co-locating a second job must genuinely slow both down: the PS NICs
// are time-shared by every worker in the fabric and the PS CPUs are
// shared simulator resources.
TEST(MultiJob, ContentionSlowsEveryJob) {
  MultiJobSpec multi;
  multi.jobs.push_back({Job("Inception v1", 2, 1, true, "tac"), 0.0});
  multi.jobs.push_back({Job("Inception v1", 2, 1, true, "tac"), 0.0});

  harness::Session session;
  const harness::MultiJobReport report = session.RunMultiJob(multi);
  ASSERT_EQ(report.interference.slowdown.size(), 2u);
  for (const double slowdown : report.interference.slowdown) {
    EXPECT_GT(slowdown, 1.05);
  }
  // Identical jobs must absorb the contention symmetrically.
  EXPECT_GT(report.interference.fairness, 0.99);
  EXPECT_GE(report.interference.max_slowdown,
            report.interference.mean_slowdown);
}

// Pins MultiJobReport::ToJson's shape — downstream tooling parses these
// keys, including the per-iteration p50/p99 slowdown distribution added
// with the scheduler service.
TEST(MultiJob, ReportJsonShapeIsPinned) {
  MultiJobSpec multi;
  multi.jobs.push_back({Job("Inception v1", 2, 1, true, "tac"), 0.0});
  multi.jobs.push_back({Job("Inception v1", 2, 1, true, "tac"), 0.0});
  harness::Session session;
  const harness::MultiJobReport report = session.RunMultiJob(multi);
  const std::string json = report.ToJson();
  for (const char* key :
       {"\"spec\": ", "\"combined\": {\"mean_iteration_s\": ",
        "\"throughput\": ", "\"jobs\": [", "\"job\": 0", "\"job\": 1",
        "\"model\": \"Inception v1\"", "\"policy\": \"tac\"",
        "\"start_offset_s\": ", "\"mean_iteration_s\": ",
        "\"mean_efficiency\": ", "\"mean_overlap\": ",
        "\"isolated_iteration_s\": ", "\"slowdown\": ",
        "\"p50_slowdown\": ", "\"p99_slowdown\": ", "\"mean_slowdown\": ",
        "\"max_slowdown\": ", "\"fairness\": "}) {
    EXPECT_NE(json.find(key), std::string::npos)
        << "missing " << key << " in:\n" << json;
  }
  // Per-iteration percentiles sit inside the observed slowdown range.
  const std::vector<double> ratios = report.IterationSlowdowns(0);
  ASSERT_EQ(ratios.size(), 3u);  // one per iteration
  const double p50 = util::Percentile(ratios, 0.5);
  const double p99 = util::Percentile(ratios, 0.99);
  EXPECT_GE(p99, p50);
  EXPECT_GE(p50, *std::min_element(ratios.begin(), ratios.end()));
  EXPECT_LE(p99, *std::max_element(ratios.begin(), ratios.end()));
  // Without isolated references the slowdown keys must be absent.
  const harness::MultiJobReport bare =
      session.RunMultiJob(multi, /*with_isolated=*/false);
  EXPECT_EQ(bare.ToJson().find("\"p50_slowdown\""), std::string::npos);
  EXPECT_TRUE(bare.IterationSlowdowns(0).empty());
}

TEST(MultiJob, RunMultiJobWithoutIsolatedSkipsReferences) {
  MultiJobSpec multi;
  multi.jobs.push_back({Job("Inception v1", 2, 1, false, "tic"), 0.0});
  harness::Session session;
  const harness::MultiJobReport report =
      session.RunMultiJob(multi, /*with_isolated=*/false);
  EXPECT_TRUE(report.isolated.empty());
  EXPECT_EQ(report.interference.mean_slowdown, 1.0);
  EXPECT_FALSE(report.result.jobs.empty());
}

// An arrival offset holds back every task of the delayed job: nothing
// of it may start before offset seconds.
TEST(MultiJob, StartOffsetDelaysTheJob) {
  ExperimentSpec spec = Job("Inception v1", 2, 1, true, "tac");
  spec.cluster.jitter_sigma = 0.0;  // the delay task's duration is exact
  spec.cluster.out_of_order = 0.0;

  MultiJobSpec plain;
  plain.jobs.push_back({spec, 0.0});
  MultiJobSpec delayed;
  delayed.jobs.push_back({spec, 0.5});

  const MultiJobRunner runner(delayed);
  const MultiJobLowering::JobSlice& slice = runner.lowering().jobs[0];
  EXPECT_GE(slice.delay_task, 0);
  sim::TaskGraphSim sim = runner.lowering().combined.BuildSim();
  sim::SimOptions options = spec.BuildCluster().sim;
  options.enforce_gates = true;
  const sim::SimResult run = sim.Run(options, spec.seed);
  for (sim::TaskId t = slice.first_task; t < slice.last_task; ++t) {
    EXPECT_GE(run.start[static_cast<std::size_t>(t)], 0.5);
  }

  // Per-job metrics run on the job's own clock (arrival = t = 0):
  // waiting for the offset is not billed as execution time, so the
  // delayed job's makespan stays in the ballpark of the plain run while
  // the combined fabric timeline carries the full offset.
  const MultiJobResult base = MultiJobRunner(plain).Run();
  const MultiJobResult shifted = MultiJobRunner(delayed).Run();
  for (std::size_t i = 0; i < base.jobs[0].iterations.size(); ++i) {
    EXPECT_LT(shifted.jobs[0].iterations[i].makespan,
              base.jobs[0].iterations[i].makespan + 0.5);
    EXPECT_NEAR(shifted.combined.iterations[i].makespan,
                shifted.jobs[0].iterations[i].makespan + 0.5, 1e-9);
  }

  // A lone delayed job suffers no contention, so its slowdown against
  // the isolated reference must be ~1, not offset/iteration-time.
  harness::Session session;
  const harness::MultiJobReport report = session.RunMultiJob(delayed);
  EXPECT_GT(report.interference.slowdown[0], 0.8);
  EXPECT_LT(report.interference.slowdown[0], 1.2);
}

TEST(MultiJob, MixedEnforcementJobsCoexist) {
  // A gated TAC job next to an ungated baseline job: gates stay on for
  // the scheduled job only, and both slices stay internally consistent.
  MultiJobSpec multi;
  multi.jobs.push_back({Job("Inception v1", 2, 1, true, "tac"), 0.0});
  multi.jobs.push_back({Job("AlexNet v2", 2, 1, false, "baseline"), 0.0});
  const MultiJobRunner runner(multi);
  const MultiJobResult result = runner.Run();
  for (const ExperimentResult& job : result.jobs) {
    for (const IterationStats& it : job.iterations) {
      EXPECT_GT(it.makespan, 0.0);
      for (const double finish : it.worker_finish) {
        EXPECT_LE(finish, it.makespan + 1e-12);
      }
    }
  }
}

}  // namespace
}  // namespace tictac::runtime
