#include "analysis/exhaustive.h"

#include <gtest/gtest.h>

#include "core/policies.h"
#include "core/tac.h"
#include "core/tic.h"
#include "models/random_dag.h"

namespace tictac {
namespace {

using core::AnalyticalTimeOracle;
using core::Graph;
using core::MapTimeOracle;
using core::OpId;
using core::PlatformModel;
using core::Schedule;
using analysis::EvaluateOrder;
using analysis::EvaluateSchedule;
using analysis::ExhaustiveResult;
using analysis::ExhaustiveSearch;

// Figure 1a with unit times: good order = 3, bad order = 4.
struct Fig1a {
  Graph g;
  OpId r1, r2;
  MapTimeOracle oracle{{}};
  Fig1a() {
    r1 = g.AddRecv("r1", 0, 0);
    r2 = g.AddRecv("r2", 0, 1);
    const OpId o1 = g.AddCompute("op1", 1);
    const OpId o2 = g.AddCompute("op2", 1);
    g.AddEdge(r1, o1);
    g.AddEdge(o1, o2);
    g.AddEdge(r2, o2);
    oracle.Set(r1, 1.0);
    oracle.Set(r2, 1.0);
    oracle.Set(o1, 1.0);
    oracle.Set(o2, 1.0);
  }
};

TEST(EvaluateOrder, Fig1aGoodVsBad) {
  Fig1a f;
  EXPECT_DOUBLE_EQ(EvaluateOrder(f.g, f.oracle, {f.r1, f.r2}), 3.0);
  EXPECT_DOUBLE_EQ(EvaluateOrder(f.g, f.oracle, {f.r2, f.r1}), 4.0);
}

TEST(ExhaustiveSearch, Fig1aFindsBothExtremes) {
  Fig1a f;
  const ExhaustiveResult result = ExhaustiveSearch(f.g, f.oracle);
  EXPECT_EQ(result.orders_evaluated, 2u);
  EXPECT_DOUBLE_EQ(result.best, 3.0);
  EXPECT_DOUBLE_EQ(result.worst, 4.0);
  EXPECT_EQ(result.best_order, (std::vector<OpId>{f.r1, f.r2}));
}

TEST(ExhaustiveSearch, TacIsOptimalOnFig1a) {
  Fig1a f;
  const Schedule tac = core::Tac(f.g, f.oracle);
  EXPECT_DOUBLE_EQ(EvaluateSchedule(f.g, f.oracle, tac), 3.0);
}

TEST(ExhaustiveSearch, RejectsTooManyRecvs) {
  models::RandomDagOptions options;
  options.num_recvs = 9;
  const Graph g = models::MakeRandomDag(options, 1);
  const AnalyticalTimeOracle oracle{PlatformModel{}};
  EXPECT_THROW(ExhaustiveSearch(g, oracle, 8), std::invalid_argument);
}

// The core property sweep: on many random DAGs, TAC must land near the
// exhaustive optimum, beat the mean (random) order, and TIC must beat the
// worst order. This is the strongest certificate we can produce for an
// NP-hard problem.
class OptimalitySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimalitySweep, TacNearOptimalTicBeatsWorst) {
  const std::uint64_t seed = GetParam();
  models::RandomDagOptions options;
  options.num_recvs = 6;
  options.num_computes = 10;
  options.num_layers = 3;
  const Graph g = models::MakeRandomDag(options, seed);

  // Comparable comm/comp magnitudes make ordering matter.
  PlatformModel hw;
  hw.compute_rate = 1.0;
  hw.bandwidth_bps = 1e6;
  hw.latency_s = 0.0;
  const AnalyticalTimeOracle oracle(hw);

  const ExhaustiveResult space = ExhaustiveSearch(g, oracle);
  ASSERT_EQ(space.orders_evaluated, 720u);

  const double tac = EvaluateSchedule(g, oracle, core::Tac(g, oracle));
  const double tic = EvaluateSchedule(g, oracle, core::Tic(g));

  // TAC within 10% of the optimum (it is a heuristic, not exact).
  EXPECT_LE(tac, space.best * 1.10 + 1e-9) << "seed " << seed;
  // TAC no worse than the average random order; TIC — which ignores the
  // (here heavily skewed) transfer times — may land slightly above the
  // mean on adversarial random DAGs, so it gets a small margin. On real
  // DNN structure TIC tracks TAC (Appendix B / bench_fig13).
  EXPECT_LE(tac, space.mean + 1e-9) << "seed " << seed;
  EXPECT_LE(tic, space.mean * 1.08 + 1e-9) << "seed " << seed;
  // And strictly better than the worst order when there is any spread.
  if (space.worst > space.best * 1.01) {
    EXPECT_LT(tac, space.worst) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDags, OptimalitySweep,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(ExhaustiveSearch, MeanBetweenBestAndWorst) {
  models::RandomDagOptions options;
  options.num_recvs = 5;
  const Graph g = models::MakeRandomDag(options, 7);
  const AnalyticalTimeOracle oracle{PlatformModel{
      .compute_rate = 1.0, .bandwidth_bps = 1e6, .latency_s = 0.0}};
  const ExhaustiveResult result = ExhaustiveSearch(g, oracle);
  EXPECT_LE(result.best, result.mean);
  EXPECT_LE(result.mean, result.worst);
  EXPECT_EQ(result.orders_evaluated, 120u);
}

}  // namespace
}  // namespace tictac
