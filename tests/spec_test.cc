// ExperimentSpec / SweepSpec grammar: parse ↔ ToString round trips,
// sweep expansion counts and ordering, and ClusterConfig validation.
#include "runtime/spec.h"

#include <gtest/gtest.h>

#include <functional>
#include <limits>
#include <stdexcept>

namespace tictac::runtime {
namespace {

void ExpectThrowWith(const std::function<void()>& fn,
                     const std::string& fragment) {
  try {
    fn();
    FAIL() << "expected std::invalid_argument containing '" << fragment
           << "'";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << "message was: " << e.what();
  }
}

TEST(ExperimentSpec, ParsesTheIssueStyleSpec) {
  const auto spec = ExperimentSpec::Parse(
      "envG:workers=8:ps=4:training model=VGG-16 policy=tac");
  EXPECT_EQ(spec.cluster.env, "envG");
  EXPECT_EQ(spec.cluster.workers, 8);
  EXPECT_EQ(spec.cluster.ps, 4);
  EXPECT_TRUE(spec.cluster.training);
  EXPECT_EQ(spec.model, "VGG-16");
  EXPECT_EQ(spec.policy, "tac");
  EXPECT_EQ(spec.iterations, 10);  // default
  EXPECT_EQ(spec.seed, 1u);        // default
}

TEST(ExperimentSpec, ModelNamesMayContainSpaces) {
  const auto spec = ExperimentSpec::Parse(
      "envC:workers=2:ps=1:inference model=Inception v2 policy=tic");
  EXPECT_EQ(spec.model, "Inception v2");
  EXPECT_EQ(spec.cluster.env, "envC");
  EXPECT_FALSE(spec.cluster.training);
}

TEST(ExperimentSpec, RoundTripIdentity) {
  const char* specs[] = {
      "envG:workers=8:ps=4:training model=VGG-16 policy=tac",
      "envC:workers=2:ps=1:inference model=Inception v2 policy=random:7 "
      "iterations=3 seed=99",
      "envG:workers=4:ps=2:training:batch=0.5:chunk=4194304:"
      "enforce=chain:sigma=0.3 model=AlexNet v2 policy=reverse:tic",
      "envG:workers=2:ps=1:training:jitter=0.1:ooo=0 model=VGG-19",
      "envG:workers=4:ps=1:training:speeds=1,1,1,0.5 model=Inception v1",
  };
  for (const char* text : specs) {
    const auto spec = ExperimentSpec::Parse(text);
    const auto reparsed = ExperimentSpec::Parse(spec.ToString());
    EXPECT_EQ(spec, reparsed) << text;
    EXPECT_EQ(spec.ToString(), reparsed.ToString()) << text;
  }
}

TEST(ExperimentSpec, RoundTripsDoublesNeedingFullPrecision) {
  // 0.1 + 0.2 needs 17 significant digits; a 15-digit emit would parse
  // back to a different double (and alias Session cache keys).
  ExperimentSpec spec;
  spec.model = "VGG-16";
  spec.cluster.jitter_sigma = 0.1 + 0.2;
  spec.cluster.batch_factor = 1.0 / 3.0;
  const auto reparsed = ExperimentSpec::Parse(spec.ToString());
  EXPECT_EQ(spec, reparsed);
  // Friendly values still print short.
  EXPECT_EQ(FormatDouble(0.5), "0.5");
  EXPECT_EQ(FormatDouble(0.1), "0.1");
}

TEST(ExperimentSpec, ByteSuffixesAndEnforcementTokens) {
  const auto spec = ExperimentSpec::Parse(
      "envG:workers=4:ps=2:inference:chunk=4M:enforce=priority "
      "model=VGG-16");
  EXPECT_EQ(spec.cluster.chunk_bytes, 4ll << 20);
  EXPECT_EQ(spec.cluster.enforcement, Enforcement::kPriorityOnly);
  const auto kib = ExperimentSpec::Parse(
      "envG:workers=4:ps=2:inference:chunk=512KiB model=VGG-16");
  EXPECT_EQ(kib.cluster.chunk_bytes, 512ll << 10);
}

TEST(ExperimentSpec, ActionableParseErrors) {
  ExpectThrowWith([] { ExperimentSpec::Parse(""); }, "empty");
  ExpectThrowWith([] { ExperimentSpec::Parse("envG:workers=4 policy=tic"); },
                  "model=");
  ExpectThrowWith(
      [] { ExperimentSpec::Parse("envX:workers=4 model=VGG-16"); }, "envX");
  ExpectThrowWith(
      [] {
        ExperimentSpec::Parse("envG:workerz=4:ps=1 model=VGG-16");
      },
      "workerz");
  ExpectThrowWith(
      [] {
        ExperimentSpec::Parse("envG:workers=four:ps=1 model=VGG-16");
      },
      "integer");
  ExpectThrowWith(
      [] {
        ExperimentSpec::Parse(
            "envG:workers=4:ps=1 model=VGG-16 frobnicate=1");
      },
      "frobnicate");
  // Duplicate field tokens would be silent last-wins otherwise.
  ExpectThrowWith(
      [] {
        SweepSpec::Parse("envG:workers=4:ps=1 models=VGG-16 "
                         "policies=baseline,tic policies=tac");
      },
      "duplicate");
  ExpectThrowWith(
      [] {
        SweepSpec::Parse("envG:workers=4:ps=1 models=VGG-16 seed=1 seed=2");
      },
      "duplicate");
  ExpectThrowWith(
      [] {
        ExperimentSpec::Parse(
            "envG:workers=4:ps=1 model=VGG-16 iterations=0");
      },
      "iterations");
  // Lists belong to sweeps.
  ExpectThrowWith(
      [] {
        ExperimentSpec::Parse("envG:workers=2,4:ps=1 model=VGG-16");
      },
      "SweepSpec");
  // Out-of-int-range axes fail instead of truncating/wrapping.
  ExpectThrowWith(
      [] {
        ExperimentSpec::Parse("envG:workers=4294967297:ps=1 model=VGG-16");
      },
      "workers");
  ExpectThrowWith(
      [] {
        ExperimentSpec::Parse(
            "envG:workers=4:ps=1:chunk=8589934592G model=VGG-16");
      },
      "overflow");
}

TEST(ExperimentSpec, SeedsBeyondInt64RoundTrip) {
  ExperimentSpec spec;
  spec.model = "VGG-16";
  spec.seed = 1ull << 63;  // not representable as a signed 64-bit value
  const auto reparsed = ExperimentSpec::Parse(spec.ToString());
  EXPECT_EQ(reparsed.seed, 1ull << 63);
  EXPECT_EQ(spec, reparsed);
}

TEST(ClusterConfig, ValidateRejectsOutOfRangeFields) {
  ClusterConfig config = EnvG(4, 1, true);
  EXPECT_NO_THROW(config.Validate());

  config.num_workers = 0;
  ExpectThrowWith([&] { config.Validate(); }, "num_workers");
  config = EnvG(4, 1, true);
  config.num_ps = 0;
  ExpectThrowWith([&] { config.Validate(); }, "num_ps");
  config = EnvG(4, 1, true);
  config.batch_factor = -1.0;
  ExpectThrowWith([&] { config.Validate(); }, "batch_factor");
  config = EnvG(4, 1, true);
  config.chunk_bytes = -5;
  ExpectThrowWith([&] { config.Validate(); }, "chunk_bytes");
  config = EnvG(4, 1, true);
  config.worker_speed_factors = {1.0, 1.0};  // 2 factors, 4 workers
  ExpectThrowWith([&] { config.Validate(); }, "worker_speed_factors");
  config.worker_speed_factors = {1.0, 1.0, 1.0, 0.0};
  ExpectThrowWith([&] { config.Validate(); }, "worker_speed_factors[3]");
  config = EnvG(4, 1, true);
  config.sim.out_of_order_probability = 1.5;  // typo for 0.15
  ExpectThrowWith([&] { config.Validate(); }, "out_of_order_probability");
  config = EnvG(4, 1, true);
  config.tac_oracle_sigma = std::numeric_limits<double>::quiet_NaN();
  ExpectThrowWith([&] { config.Validate(); }, "tac_oracle_sigma");
  config = EnvG(4, 1, true);
  config.sim.jitter_sigma = -0.1;
  ExpectThrowWith([&] { config.Validate(); }, "jitter_sigma");
  config = EnvG(4, 1, true);
  config.batch_factor = std::numeric_limits<double>::infinity();
  ExpectThrowWith([&] { config.Validate(); }, "batch_factor");
  config = EnvG(4, 1, true);
  config.worker_speed_factors = {1.0, 1.0, 1.0,
                                 std::numeric_limits<double>::infinity()};
  ExpectThrowWith([&] { config.Validate(); }, "worker_speed_factors[3]");
}

TEST(ClusterConfig, SimOverridesValidatedAtParseTime) {
  ExpectThrowWith(
      [] {
        ExperimentSpec::Parse("envG:workers=2:ps=1:ooo=1.5 model=VGG-16");
      },
      "out_of_order_probability");
  ExpectThrowWith(
      [] {
        ExperimentSpec::Parse(
            "envG:workers=2:ps=1:sigma=nan model=VGG-16");
      },
      "tac_oracle_sigma");
}

TEST(ClusterSpec, BuildAppliesOverridesOnTopOfEnv) {
  ClusterSpec spec;
  spec.env = "envC";
  spec.workers = 3;
  spec.ps = 2;
  spec.training = true;
  spec.batch_factor = 2.0;
  spec.chunk_bytes = 1024;
  spec.enforcement = Enforcement::kDagChain;
  spec.tac_oracle_sigma = 0.25;
  spec.jitter_sigma = 0.5;
  spec.out_of_order = 0.0;
  const ClusterConfig config = spec.Build();
  const ClusterConfig reference = EnvC(3, 2, true);
  EXPECT_EQ(config.num_workers, 3);
  EXPECT_EQ(config.num_ps, 2);
  EXPECT_TRUE(config.training);
  EXPECT_EQ(config.batch_factor, 2.0);
  EXPECT_EQ(config.chunk_bytes, 1024);
  EXPECT_EQ(config.enforcement, Enforcement::kDagChain);
  EXPECT_EQ(config.tac_oracle_sigma, 0.25);
  EXPECT_EQ(config.sim.jitter_sigma, 0.5);
  EXPECT_EQ(config.sim.out_of_order_probability, 0.0);
  // Untouched platform constants come from the environment.
  EXPECT_EQ(config.platform.compute_rate, reference.platform.compute_rate);
  EXPECT_EQ(config.platform.bandwidth_bps,
            reference.platform.bandwidth_bps);
}

TEST(ClusterSpec, ParseTimeValidation) {
  // ExperimentSpec::Parse materializes the cluster once so a structurally
  // valid but out-of-range spec fails at parse time, not at Run time.
  ExpectThrowWith(
      [] {
        ExperimentSpec::Parse(
            "envG:workers=4:ps=1:speeds=1,1 model=VGG-16");
      },
      "worker_speed_factors");
  ExpectThrowWith(
      [] { ExperimentSpec::Parse("envG:workers=0:ps=1 model=VGG-16"); },
      "workers");
}

TEST(SweepSpec, ExpansionCountsAndOrdering) {
  const auto sweep = SweepSpec::Parse(
      "envG:workers=2,4:ps=1,2:task=inference,training "
      "models=VGG-16,Inception v2 policies=baseline,tic seed=5");
  EXPECT_EQ(sweep.size(), 2u * 2u * 2u * 2u * 2u);
  const auto specs = sweep.Expand();
  ASSERT_EQ(specs.size(), sweep.size());

  // Policy varies fastest; model slowest.
  EXPECT_EQ(specs[0].model, "VGG-16");
  EXPECT_EQ(specs[0].policy, "baseline");
  EXPECT_FALSE(specs[0].cluster.training);
  EXPECT_EQ(specs[0].cluster.workers, 2);
  EXPECT_EQ(specs[0].cluster.ps, 1);
  EXPECT_EQ(specs[1].policy, "tic");
  EXPECT_EQ(specs[1].model, specs[0].model);
  EXPECT_EQ(specs[2].cluster.ps, 2);
  EXPECT_EQ(specs[16].model, "Inception v2");

  // Every spec carries the shared scalars.
  for (const auto& spec : specs) {
    EXPECT_EQ(spec.seed, 5u);
    EXPECT_EQ(spec.iterations, 10);
  }

  // Deterministic: re-expansion is identical.
  EXPECT_EQ(specs, sweep.Expand());
}

TEST(SweepSpec, RoundTripIdentity) {
  const char* sweeps[] = {
      "envG:workers=1,2,4,8:ps=1:inference models=VGG-16 "
      "policies=baseline,tic iterations=10 seed=1",
      "envC:workers=4:ps=1,2:task=inference,training:batch=0.5,1,2 "
      "models=Inception v2,AlexNet v2 policies=tic,tac seed=7",
      "envG:workers=2:ps=1:training:chunk=0,4194304:enforce=priority,gate "
      "models=VGG-19 policies=tac",
      "envG:workers=2:ps=1:training:sigma=0,0.3,1 models=VGG-16 "
      "policies=tac",
  };
  for (const char* text : sweeps) {
    const auto sweep = SweepSpec::Parse(text);
    const auto reparsed = SweepSpec::Parse(sweep.ToString());
    EXPECT_EQ(sweep, reparsed) << text;
    EXPECT_EQ(sweep.ToString(), reparsed.ToString()) << text;
  }
}

TEST(SweepSpec, SingularAliasesAndDefaults) {
  const auto sweep =
      SweepSpec::Parse("envG:workers=4:ps=1 model=VGG-16 policy=tac");
  EXPECT_EQ(sweep.models, std::vector<std::string>{"VGG-16"});
  EXPECT_EQ(sweep.policies, std::vector<std::string>{"tac"});
  EXPECT_EQ(sweep.size(), 1u);
  // A sweep with all-singleton axes is exactly one ExperimentSpec.
  const auto spec = ExperimentSpec::Parse(
      "envG:workers=4:ps=1 model=VGG-16 policy=tac");
  EXPECT_EQ(sweep.Expand().front(), spec);
}

TEST(SweepSpec, RejectsEmptyAxes) {
  ExpectThrowWith([] { SweepSpec().Expand(); }, "models");
  ExpectThrowWith([] { SweepSpec::Parse("envG:workers=4 policies=tic"); },
                  "model=");
  // Every axis fails loudly when emptied programmatically — a zero-spec
  // sweep is a bug, not an empty result.
  SweepSpec sweep;
  sweep.models = {"VGG-16"};
  sweep.policies.clear();
  ExpectThrowWith([&] { sweep.Expand(); }, "policies");
  sweep.policies = {"tic"};
  sweep.workers.clear();
  ExpectThrowWith([&] { sweep.Expand(); }, "workers");
}

TEST(EnforcementTokens, RoundTrip) {
  for (const Enforcement e :
       {Enforcement::kPriorityOnly, Enforcement::kHandoffGate,
        Enforcement::kDagChain}) {
    EXPECT_EQ(ParseEnforcement(EnforcementToken(e)), e);
  }
  EXPECT_THROW(ParseEnforcement("dag"), std::invalid_argument);
}

TEST(ExperimentSpec, ShardAndTopologyKnobsRoundTripExactly) {
  const auto spec = ExperimentSpec::Parse(
      "envG:workers=4:ps=2:training:chunk=1M:shard=even "
      "model=VGG-16 policy=tac");
  EXPECT_EQ(spec.cluster.shard, ShardStrategy::kEven);
  EXPECT_EQ(spec.cluster.topology, Topology::kPsFabric);
  // Non-default shard= is emitted (after chunk=, before enforce=);
  // default topology is omitted from the canonical form.
  const std::string text = spec.ToString();
  EXPECT_NE(text.find(":chunk=1048576:shard=even"), std::string::npos)
      << text;
  EXPECT_EQ(text.find(":topology="), std::string::npos) << text;
  EXPECT_EQ(ExperimentSpec::Parse(text), spec);
  EXPECT_EQ(ExperimentSpec::Parse(text).ToString(), text);

  const auto ring = ExperimentSpec::Parse(
      "envG:workers=4:ps=1:training:topology=ring model=VGG-16 "
      "policy=baseline");
  EXPECT_EQ(ring.cluster.topology, Topology::kRing);
  EXPECT_NE(ring.ToString().find(":topology=ring"), std::string::npos)
      << ring.ToString();
  EXPECT_EQ(ExperimentSpec::Parse(ring.ToString()), ring);
  EXPECT_EQ(ExperimentSpec::Parse(ring.ToString()).ToString(),
            ring.ToString());
}

TEST(ExperimentSpec, ShardAndTopologyRejectUnknownValuesAndLists) {
  ExpectThrowWith(
      [] {
        ExperimentSpec::Parse(
            "envG:workers=4:ps=1:shard=hash model=VGG-16");
      },
      "hash");
  ExpectThrowWith(
      [] {
        ExperimentSpec::Parse(
            "envG:workers=4:ps=1:topology=mesh model=VGG-16");
      },
      "mesh");
  // Comma lists on these axes belong to SweepSpec, like every other axis.
  EXPECT_THROW(ExperimentSpec::Parse(
                   "envG:workers=4:ps=1:shard=bytes,even model=VGG-16"),
               std::invalid_argument);
  EXPECT_THROW(
      ExperimentSpec::Parse(
          "envG:workers=4:ps=1:training:topology=ps,ring model=VGG-16"),
      std::invalid_argument);
}

TEST(SweepSpec, ShardAndTopologyAxesExpandAndRoundTrip) {
  const auto sweep = SweepSpec::Parse(
      "envG:workers=2:ps=2:training:shard=bytes,even:topology=ps,ring "
      "models=VGG-16 policies=tic");
  EXPECT_EQ(sweep.shards, (std::vector<ShardStrategy>{
                              ShardStrategy::kBytes, ShardStrategy::kEven}));
  EXPECT_EQ(sweep.topologies, (std::vector<Topology>{Topology::kPsFabric,
                                                     Topology::kRing}));
  EXPECT_EQ(sweep.size(), 4u);
  const auto specs = sweep.Expand();
  ASSERT_EQ(specs.size(), 4u);
  // Nesting: shard varies slower than topology (chunk → shard →
  // topology → enforcement → ... → policy).
  EXPECT_EQ(specs[0].cluster.shard, ShardStrategy::kBytes);
  EXPECT_EQ(specs[0].cluster.topology, Topology::kPsFabric);
  EXPECT_EQ(specs[1].cluster.shard, ShardStrategy::kBytes);
  EXPECT_EQ(specs[1].cluster.topology, Topology::kRing);
  EXPECT_EQ(specs[2].cluster.shard, ShardStrategy::kEven);
  EXPECT_EQ(specs[2].cluster.topology, Topology::kPsFabric);

  const auto reparsed = SweepSpec::Parse(sweep.ToString());
  EXPECT_EQ(reparsed, sweep);
  EXPECT_EQ(reparsed.ToString(), sweep.ToString());
  // Default-valued axes stay out of the canonical form.
  const auto plain = SweepSpec::Parse("envG:workers=2:ps=1 models=VGG-16");
  EXPECT_EQ(plain.ToString().find(":shard="), std::string::npos);
  EXPECT_EQ(plain.ToString().find(":topology="), std::string::npos);
}

TEST(ExperimentSpec, FlowKnobsParseBuildAndRoundTrip) {
  const auto spec = ExperimentSpec::Parse(
      "envG:workers=8:ps=4:training:flow:pods=4:oversub=2.5 "
      "model=VGG-16 policy=tac");
  EXPECT_TRUE(spec.cluster.flow);
  EXPECT_EQ(spec.cluster.pods, 4);
  EXPECT_DOUBLE_EQ(spec.cluster.oversub, 2.5);

  const ClusterConfig config = spec.BuildCluster();
  EXPECT_TRUE(config.sim.flow_fairness);
  EXPECT_EQ(config.fabric_pods, 4);
  EXPECT_DOUBLE_EQ(config.fabric_oversubscription, 2.5);

  EXPECT_EQ(ExperimentSpec::Parse(spec.ToString()), spec);
  EXPECT_NE(spec.ToString().find(":flow:pods=4:oversub=2.5"),
            std::string::npos);

  // Defaults stay invisible in the canonical form.
  const auto plain = ExperimentSpec::Parse(
      "envG:workers=8:ps=4:training model=VGG-16 policy=tac");
  EXPECT_FALSE(plain.cluster.flow);
  EXPECT_FALSE(plain.BuildCluster().sim.flow_fairness);
  EXPECT_EQ(plain.ToString().find(":flow"), std::string::npos);
  EXPECT_EQ(plain.ToString().find(":pods="), std::string::npos);
  EXPECT_EQ(plain.ToString().find(":oversub="), std::string::npos);
}

TEST(ExperimentSpec, FlowKnobsRejectListsAndBadValues) {
  ExpectThrowWith(
      [] {
        ExperimentSpec::Parse(
            "envG:workers=4:ps=2:training:pods=2,4 model=VGG-16");
      },
      "pods= is not a sweep axis");
  ExpectThrowWith(
      [] {
        ExperimentSpec::Parse(
            "envG:workers=4:ps=2:training:oversub=0 model=VGG-16");
      },
      "oversub must be > 0");
  // pods > hosts is rejected at lowering time, not parse time, but
  // pods < 1 is structural and fails eagerly.
  ExpectThrowWith(
      [] {
        ExperimentSpec::Parse(
            "envG:workers=4:ps=2:training:pods=0 model=VGG-16");
      },
      "pods");
  // The flow model covers the PS fabric only.
  ExpectThrowWith(
      [] {
        ExperimentSpec::Parse(
            "envG:workers=4:ps=1:training:topology=ring:flow model=VGG-16");
      },
      "flow");
}

TEST(SweepSpec, FlowKnobsAreScalarsMirroredIntoEveryCluster) {
  const auto sweep = SweepSpec::Parse(
      "envG:workers=2,4:ps=2:training:flow:pods=2:oversub=4 "
      "models=VGG-16 policies=tic,tac");
  EXPECT_TRUE(sweep.flow);
  EXPECT_EQ(sweep.pods, 2);
  EXPECT_DOUBLE_EQ(sweep.oversub, 4.0);
  EXPECT_EQ(SweepSpec::Parse(sweep.ToString()), sweep);

  const auto specs = sweep.Expand();
  ASSERT_EQ(specs.size(), 4u);
  for (const ExperimentSpec& spec : specs) {
    EXPECT_TRUE(spec.cluster.flow);
    EXPECT_EQ(spec.cluster.pods, 2);
    EXPECT_DOUBLE_EQ(spec.cluster.oversub, 4.0);
  }
}

}  // namespace
}  // namespace tictac::runtime
